// hierarchy.hpp — the memory system as a composable cache graph.
//
// This is the substrate standing in for Simics + g-cache: it decides
// hit/miss at each level, charges a simple additive latency, enforces
// inclusion downward, and drives the per-cluster sig::FilterUnits on every
// L2 fill and replacement. The graph (cachesim/topology.hpp) is per-core
// L1s → per-cluster shared L2s → optional single shared L3; the paper's two
// testbeds are its degenerate instances and stay bit-identical to the
// pre-graph two-level implementation:
//   * shared L2  — Intel Core 2 Duo (4MB 16-way shared), the main machine;
//   * private L2 — P4 Xeon SMP (2MB 8-way per processor), Fig 3(a).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "cachesim/addr.hpp"
#include "cachesim/cache.hpp"
#include "cachesim/tlb.hpp"
#include "cachesim/topology.hpp"
#include "sig/filter_unit.hpp"

namespace symbiosis::cachesim {

/// Additive access latencies in core cycles.
struct LatencyModel {
  std::uint32_t l1_hit = 3;
  std::uint32_t l2_hit = 14;
  /// Charged per L3 lookup; only topologies with an L3 ever pay it.
  std::uint32_t l3_hit = 40;
  std::uint32_t memory = 200;
  /// Effective cost of a last-level miss inside a detected stream: the
  /// stride prefetcher / MLP overlaps most of the memory latency, which is
  /// what lets real streaming programs (libquantum, hmmer) churn the shared
  /// cache fast enough to hurt co-runners.
  std::uint32_t stream_miss = 22;
  std::uint32_t tlb_miss = 30;
};

/// Signature-hardware knobs (geometry comes from the L2).
struct SignatureConfig {
  bool enabled = true;
  unsigned counter_bits = 3;
  unsigned hash_functions = 1;
  sig::HashKind hash = sig::HashKind::Xor;
  unsigned sample_shift = 0;  ///< 2 = the paper's 25% set sampling
};

struct HierarchyConfig {
  std::size_t num_cores = 2;
  CacheGeometry l1{8 * 1024, 8, 64};
  CacheGeometry l2{256 * 1024, 16, 64};
  bool shared_l2 = true;
  ReplacementKind l1_replacement = ReplacementKind::Lru;
  ReplacementKind l2_replacement = ReplacementKind::Lru;
  LatencyModel latency{};
  SignatureConfig signature{};
  std::size_t tlb_entries = 64;
  std::uint64_t seed = 1;

  // --- graph extensions (defaults keep the legacy two-level shape) ---

  /// Shared-L2 cluster count: cores split into equal groups, each sharing
  /// one L2 (1 = the legacy single shared L2). Ignored when !shared_l2.
  std::size_t l2_clusters = 1;
  /// Optional shared inclusive L3 below every cluster L2.
  std::optional<CacheGeometry> l3;
  ReplacementKind l3_replacement = ReplacementKind::Srrip;
  /// CAT-style way partitions of the shared levels (empty = unpartitioned):
  /// L2 groups are cluster-LOCAL cores, L3 groups are clusters.
  CachePartition l2_way_partition;
  CachePartition l3_way_partition;

  /// The cache graph this config describes (see topology.hpp).
  [[nodiscard]] HierarchyTopology topology() const {
    HierarchyTopology t;
    t.num_cores = num_cores;
    t.l2_shared = shared_l2;
    t.l2_clusters = l2_clusters;
    t.l1 = l1;
    t.l2 = l2;
    t.l3 = l3;
    t.l1_replacement = l1_replacement;
    t.l2_replacement = l2_replacement;
    t.l3_replacement = l3_replacement;
    t.l2_partition = l2_way_partition;
    t.l3_partition = l3_way_partition;
    return t;
  }
};

/// Result of one memory access through the hierarchy.
struct MemAccessResult {
  std::uint32_t cycles = 0;
  bool l1_hit = false;
  bool l2_hit = false;
  bool l3_hit = false;  ///< always false on topologies without an L3
  bool tlb_hit = false;
  bool stream_prefetched = false;  ///< last-level miss served at stream_miss cost

  [[nodiscard]] bool operator==(const MemAccessResult&) const noexcept = default;
};

/// One reference of a replayed trace (batched-access input element).
struct MemRef {
  Addr addr = 0;
  bool is_write = false;
};

/// Aggregate outcome of one access_batch() call.
struct BatchSummary {
  std::uint64_t accesses = 0;
  std::uint64_t cycles = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t l3_hits = 0;
  std::uint64_t tlb_hits = 0;
  std::uint64_t stream_prefetched = 0;

  [[nodiscard]] bool operator==(const BatchSummary&) const noexcept = default;

  /// Accumulate another batch (trace replay sums per-chunk summaries).
  BatchSummary& operator+=(const BatchSummary& other) noexcept {
    accesses += other.accesses;
    cycles += other.cycles;
    l1_hits += other.l1_hits;
    l2_hits += other.l2_hits;
    l3_hits += other.l3_hits;
    tlb_hits += other.tlb_hits;
    stream_prefetched += other.stream_prefetched;
    return *this;
  }
};

/// Aggregate counters of one cache level (all caches of that level summed);
/// the per-level run-report payload (schema v2).
struct LevelStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;

  [[nodiscard]] bool operator==(const LevelStats&) const noexcept = default;
};

/// The memory hierarchy of one simulated machine.
class Hierarchy {
 public:
  explicit Hierarchy(HierarchyConfig config);

  /// One load/store by @p core at byte address @p addr.
  MemAccessResult access(std::size_t core, Addr addr, bool is_write);

  /// Batched trace replay: process @p n references for @p core exactly as n
  /// successive access() calls would (bit-identical results, stats, filter
  /// and replacement state — the differential suite pins this down), but
  /// with the per-access overhead (core-indexed lookups, cluster/L2/filter
  /// resolution, bounds checks) hoisted out of the loop. When @p results is
  /// non-null it receives one MemAccessResult per reference.
  BatchSummary access_batch(std::size_t core, const MemRef* refs, std::size_t n,
                            MemAccessResult* results = nullptr);

  /// Context-switch hooks forwarded to TLB and signature hardware.
  void on_context_switch_in(std::size_t core);
  void flush_tlb(std::size_t core);

  [[nodiscard]] const HierarchyConfig& config() const noexcept { return config_; }
  [[nodiscard]] const HierarchyTopology& topology() const noexcept { return topo_; }
  [[nodiscard]] std::size_t num_cores() const noexcept { return config_.num_cores; }

  // --- graph shape ---

  [[nodiscard]] std::size_t num_clusters() const noexcept { return clusters_; }
  [[nodiscard]] std::size_t cluster_of(std::size_t core) const noexcept {
    return core / cores_per_cluster_;
  }
  [[nodiscard]] std::size_t local_core(std::size_t core) const noexcept {
    return core % cores_per_cluster_;
  }
  [[nodiscard]] bool has_l3() const noexcept { return l3_ != nullptr; }

  /// Cluster 0's signature unit (the only one on degenerate topologies);
  /// nullptr when disabled or when the L2 is private.
  [[nodiscard]] sig::FilterUnit* filter() noexcept {
    return filters_.empty() ? nullptr : filters_.front().get();
  }
  [[nodiscard]] const sig::FilterUnit* filter() const noexcept {
    return filters_.empty() ? nullptr : filters_.front().get();
  }
  /// The signature unit shadowing @p core's cluster L2 (nullptr when
  /// disabled). Its core slots are CLUSTER-LOCAL: pass local_core(core).
  [[nodiscard]] sig::FilterUnit* filter_for_core(std::size_t core) noexcept {
    return filters_.empty() ? nullptr : filters_[cluster_of(core)].get();
  }

  [[nodiscard]] Cache& l1(std::size_t core) { return *l1_.at(core); }
  /// @p core's L2: the cluster's shared L2, or its private L2.
  [[nodiscard]] Cache& l2(std::size_t core = 0) { return *l2_.at(cluster_of(core)); }
  [[nodiscard]] const Cache& l2(std::size_t core = 0) const { return *l2_.at(cluster_of(core)); }
  /// Cluster @p cluster's L2 directly (cluster index, not core index).
  [[nodiscard]] Cache& cluster_l2(std::size_t cluster) { return *l2_.at(cluster); }
  /// The shared L3; only valid when has_l3().
  [[nodiscard]] Cache& l3() { return *l3_; }
  [[nodiscard]] const Cache& l3() const { return *l3_; }
  [[nodiscard]] Tlb& tlb(std::size_t core) { return *tlb_.at(core); }

  /// Ground-truth L2 footprint of @p core (valid lines it owns); the
  /// Fig 2/5 reference series.
  [[nodiscard]] std::size_t l2_footprint(std::size_t core) const;

  /// Summed counters of one level across all its caches, keyed "l1", "l2",
  /// "l3" (empty stats for "l3" on topologies without one).
  [[nodiscard]] LevelStats level_stats(std::string_view level) const;

  /// Publish cache/TLB counter DELTAS since the last publish into the global
  /// obs::MetricRegistry ("cachesim.l1.hit", "cachesim.l2.miss", ...; L3
  /// counters only exist on topologies with an L3). The per-access hot path
  /// stays free of atomics; the Machine calls this at cold boundaries (hook
  /// firings and end of run).
  void publish_metrics();

  /// Clear ONLY counters — every cache's total and per-requestor CacheStats
  /// at every level, TLB hit/miss counts — and re-baseline the obs delta
  /// publisher, all in one place. Tag arrays, filters and stream state are
  /// untouched, so this is safe mid-run (e.g. to discard a warm-up phase).
  /// Resetting individual caches via l1()/l2()/l3() instead leaves the
  /// publisher baseline stale and makes the next publish_metrics() delta
  /// wrap around; use this.
  void reset_stats() noexcept;

  /// Clear all caches, TLBs, filters and stats.
  void reset();

 private:
  struct StreamState;

  /// Shared per-access body: access() and access_batch() both funnel here so
  /// the batched path cannot drift from the canonical one. @p cluster is
  /// @p core's cluster (hoisted by the callers); @p l2 and @p filter are the
  /// cluster's.
  MemAccessResult access_one(std::size_t core, std::size_t cluster, Addr addr, bool is_write,
                             Cache& l1, Cache& l2, Tlb& tlb, sig::FilterUnit* filter,
                             StreamState& ss);

  /// Flight-recorder emission for an L2 eviction. A SYM_COLD sink: the
  /// recorder's enabled() check, the event construction (a std::variant
  /// whose cleanup statically reaches operator delete) and the guarded
  /// global() accessor all live behind this noinline boundary so the
  /// symhot purity proof of access_one() stays allocation- and lock-free.
  void record_l2_eviction(LineAddr victim_line, std::size_t set, std::size_t way,
                          std::size_t core);

  HierarchyConfig config_;
  HierarchyTopology topo_{};
  std::size_t clusters_ = 1;
  std::size_t cores_per_cluster_ = 1;
  std::vector<std::unique_ptr<Cache>> l1_;
  std::vector<std::unique_ptr<Cache>> l2_;  // one per cluster
  std::unique_ptr<Cache> l3_;               // null on topologies without an L3
  std::vector<std::unique_ptr<Tlb>> tlb_;
  std::vector<std::unique_ptr<sig::FilterUnit>> filters_;  // one per cluster; empty = disabled

  /// Per-core stream detector state (last line + last stride, in lines).
  struct StreamState {
    LineAddr last_line = 0;
    std::int64_t last_stride = 0;
    bool valid = false;
  };
  std::vector<StreamState> stream_;

  /// Counter totals as of the last publish_metrics() (delta baseline).
  struct PublishedStats {
    std::uint64_t l1_hits = 0, l1_misses = 0;
    std::uint64_t l2_hits = 0, l2_misses = 0, l2_evictions = 0;
    std::uint64_t l3_hits = 0, l3_misses = 0, l3_evictions = 0;
    std::uint64_t tlb_misses = 0;
  };
  PublishedStats published_;
};

}  // namespace symbiosis::cachesim
