// hierarchy.hpp — per-core L1s above a shared (or per-core private) L2.
//
// This is the substrate standing in for Simics + g-cache: it decides
// hit/miss at each level, charges a simple additive latency, enforces
// L1⊆L2 inclusion, and drives the sig::FilterUnit on every L2 fill and
// replacement. Two configurations mirror the paper's testbeds:
//   * shared L2  — Intel Core 2 Duo (4MB 16-way shared), the main machine;
//   * private L2 — P4 Xeon SMP (2MB 8-way per processor), Fig 3(a).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cachesim/addr.hpp"
#include "cachesim/cache.hpp"
#include "cachesim/tlb.hpp"
#include "sig/filter_unit.hpp"

namespace symbiosis::cachesim {

/// Additive access latencies in core cycles.
struct LatencyModel {
  std::uint32_t l1_hit = 3;
  std::uint32_t l2_hit = 14;
  std::uint32_t memory = 200;
  /// Effective cost of an L2 miss inside a detected stream: the stride
  /// prefetcher / MLP overlaps most of the memory latency, which is what
  /// lets real streaming programs (libquantum, hmmer) churn the shared L2
  /// fast enough to hurt co-runners.
  std::uint32_t stream_miss = 22;
  std::uint32_t tlb_miss = 30;
};

/// Signature-hardware knobs (geometry comes from the L2).
struct SignatureConfig {
  bool enabled = true;
  unsigned counter_bits = 3;
  unsigned hash_functions = 1;
  sig::HashKind hash = sig::HashKind::Xor;
  unsigned sample_shift = 0;  ///< 2 = the paper's 25% set sampling
};

struct HierarchyConfig {
  std::size_t num_cores = 2;
  CacheGeometry l1{8 * 1024, 8, 64};
  CacheGeometry l2{256 * 1024, 16, 64};
  bool shared_l2 = true;
  ReplacementKind l1_replacement = ReplacementKind::Lru;
  ReplacementKind l2_replacement = ReplacementKind::Lru;
  LatencyModel latency{};
  SignatureConfig signature{};
  std::size_t tlb_entries = 64;
  std::uint64_t seed = 1;
};

/// Result of one memory access through the hierarchy.
struct MemAccessResult {
  std::uint32_t cycles = 0;
  bool l1_hit = false;
  bool l2_hit = false;
  bool tlb_hit = false;
  bool stream_prefetched = false;  ///< L2 miss served at stream_miss cost

  [[nodiscard]] bool operator==(const MemAccessResult&) const noexcept = default;
};

/// One reference of a replayed trace (batched-access input element).
struct MemRef {
  Addr addr = 0;
  bool is_write = false;
};

/// Aggregate outcome of one access_batch() call.
struct BatchSummary {
  std::uint64_t accesses = 0;
  std::uint64_t cycles = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t tlb_hits = 0;
  std::uint64_t stream_prefetched = 0;

  [[nodiscard]] bool operator==(const BatchSummary&) const noexcept = default;
};

/// The memory hierarchy of one simulated machine.
class Hierarchy {
 public:
  explicit Hierarchy(HierarchyConfig config);

  /// One load/store by @p core at byte address @p addr.
  MemAccessResult access(std::size_t core, Addr addr, bool is_write);

  /// Batched trace replay: process @p n references for @p core exactly as n
  /// successive access() calls would (bit-identical results, stats, filter
  /// and replacement state — the differential suite pins this down), but
  /// with the per-access overhead (core-indexed lookups, L2/filter
  /// resolution, bounds checks) hoisted out of the loop. When @p results is
  /// non-null it receives one MemAccessResult per reference.
  BatchSummary access_batch(std::size_t core, const MemRef* refs, std::size_t n,
                            MemAccessResult* results = nullptr);

  /// Context-switch hooks forwarded to TLB and signature hardware.
  void on_context_switch_in(std::size_t core);
  void flush_tlb(std::size_t core);

  [[nodiscard]] const HierarchyConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t num_cores() const noexcept { return config_.num_cores; }

  /// Signature unit; nullptr when disabled or when the L2 is private.
  [[nodiscard]] sig::FilterUnit* filter() noexcept { return filter_ ? &*filter_ : nullptr; }
  [[nodiscard]] const sig::FilterUnit* filter() const noexcept {
    return filter_ ? &*filter_ : nullptr;
  }

  [[nodiscard]] Cache& l1(std::size_t core) { return *l1_.at(core); }
  /// Shared mode: the single L2. Private mode: core's own L2.
  [[nodiscard]] Cache& l2(std::size_t core = 0) {
    return config_.shared_l2 ? *l2_.front() : *l2_.at(core);
  }
  [[nodiscard]] const Cache& l2(std::size_t core = 0) const {
    return config_.shared_l2 ? *l2_.front() : *l2_.at(core);
  }
  [[nodiscard]] Tlb& tlb(std::size_t core) { return *tlb_.at(core); }

  /// Ground-truth L2 footprint of @p core (valid lines it owns); the
  /// Fig 2/5 reference series.
  [[nodiscard]] std::size_t l2_footprint(std::size_t core) const;

  /// Publish cache/TLB counter DELTAS since the last publish into the global
  /// obs::MetricRegistry ("cachesim.l1.hit", "cachesim.l2.miss", ...). The
  /// per-access hot path stays free of atomics; the Machine calls this at
  /// cold boundaries (hook firings and end of run).
  void publish_metrics();

  /// Clear ONLY counters — every cache's total and per-requestor CacheStats,
  /// TLB hit/miss counts — and re-baseline the obs delta publisher, all in
  /// one place. Tag arrays, filters and stream state are untouched, so this
  /// is safe mid-run (e.g. to discard a warm-up phase). Resetting individual
  /// caches via l1()/l2() instead leaves the publisher baseline stale and
  /// makes the next publish_metrics() delta wrap around; use this.
  void reset_stats() noexcept;

  /// Clear all caches, TLBs, filters and stats.
  void reset();

 private:
  struct StreamState;

  /// Shared per-access body: access() and access_batch() both funnel here so
  /// the batched path cannot drift from the canonical one.
  MemAccessResult access_one(std::size_t core, Addr addr, bool is_write, Cache& l1, Cache& l2,
                             Tlb& tlb, sig::FilterUnit* filter, StreamState& ss);

  HierarchyConfig config_;
  std::vector<std::unique_ptr<Cache>> l1_;
  std::vector<std::unique_ptr<Cache>> l2_;   // size 1 (shared) or num_cores
  std::vector<std::unique_ptr<Tlb>> tlb_;
  std::optional<sig::FilterUnit> filter_;

  /// Per-core stream detector state (last line + last stride, in lines).
  struct StreamState {
    LineAddr last_line = 0;
    std::int64_t last_stride = 0;
    bool valid = false;
  };
  std::vector<StreamState> stream_;

  /// Counter totals as of the last publish_metrics() (delta baseline).
  struct PublishedStats {
    std::uint64_t l1_hits = 0, l1_misses = 0;
    std::uint64_t l2_hits = 0, l2_misses = 0, l2_evictions = 0;
    std::uint64_t tlb_misses = 0;
  };
  PublishedStats published_;
};

}  // namespace symbiosis::cachesim
