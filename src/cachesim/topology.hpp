// topology.hpp — the cache hierarchy as a composable graph of levels.
//
// A HierarchyTopology describes the shape of one machine's memory system:
// per-core L1s feed per-cluster shared L2s, which optionally feed a single
// shared L3 (per-core L1 → cluster L2 → L3 → memory). The two testbeds the
// paper uses are DEGENERATE instances of this graph:
//   * shared L2  (Core 2 Duo)   — 1 cluster, no L3;
//   * private L2 (P4 Xeon SMP)  — num_cores clusters of 1 core, no L3.
// The generalized graph is what the ROADMAP's 32–64-core scheduling studies
// need: allocation algorithms then PLACE processes across clusters (which
// shared cache they contend in) and can additionally CONSTRAIN them with a
// CAT-style way partition per shared level (LFOC-style clustering).
//
// Degenerate topologies are guaranteed bit-identical to the pre-graph
// two-level implementation; tests/test_differential_hierarchy.cpp pins this
// down against the naive reference models.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "cachesim/addr.hpp"
#include "cachesim/replacement.hpp"

namespace symbiosis::cachesim {

/// CAT-style contiguous way partition of one shared cache: group g may only
/// FILL (and therefore evict) within its own way range; lookups still search
/// every way, so partition changes never lose cached data. An empty
/// ways_per_group means "unpartitioned" (every group fills anywhere).
struct CachePartition {
  std::vector<std::size_t> ways_per_group;

  [[nodiscard]] bool enabled() const noexcept { return !ways_per_group.empty(); }
  [[nodiscard]] std::size_t groups() const noexcept { return ways_per_group.size(); }
  [[nodiscard]] std::size_t total_ways() const noexcept;

  [[nodiscard]] bool operator==(const CachePartition&) const = default;
};

/// Shape of the cache graph for one machine. Build one from
/// machine/config.hpp (HierarchyConfig::topology()); Hierarchy validates it
/// at construction.
struct HierarchyTopology {
  std::size_t num_cores = 2;
  /// Shared L2s: cores are split into l2_clusters equal groups, each group
  /// sharing one L2. Private L2s (l2_shared = false) are the same graph
  /// with num_cores clusters of one core — the accessors below normalize.
  bool l2_shared = true;
  std::size_t l2_clusters = 1;

  CacheGeometry l1{8 * 1024, 8, 64};
  CacheGeometry l2{256 * 1024, 16, 64};
  /// Optional shared last-level cache below every cluster L2 (inclusive:
  /// an L3 eviction back-invalidates the line from all L2s and L1s).
  std::optional<CacheGeometry> l3;

  ReplacementKind l1_replacement = ReplacementKind::Lru;
  ReplacementKind l2_replacement = ReplacementKind::Lru;
  ReplacementKind l3_replacement = ReplacementKind::Srrip;

  /// Way partition of each cluster L2, one group per CLUSTER-LOCAL core.
  CachePartition l2_partition;
  /// Way partition of the L3, one group per cluster.
  CachePartition l3_partition;

  // --- normalized shape ---

  /// Number of distinct L2 caches (clusters of the sharing graph).
  [[nodiscard]] std::size_t clusters() const noexcept {
    return l2_shared ? l2_clusters : num_cores;
  }
  [[nodiscard]] std::size_t cores_per_cluster() const noexcept {
    const std::size_t n = clusters();
    return n ? num_cores / n : 0;
  }
  /// Cluster that owns @p core's L2.
  [[nodiscard]] std::size_t cluster_of(std::size_t core) const noexcept {
    return core / cores_per_cluster();
  }
  /// @p core's slot within its cluster (signature hardware is per cluster
  /// and indexes cores locally).
  [[nodiscard]] std::size_t local_core(std::size_t core) const noexcept {
    return core % cores_per_cluster();
  }

  /// True when this topology is expressible by the pre-graph two-level
  /// implementation: one shared L2 (or all-private L2s), no L3, no way
  /// partitions. Degenerate topologies keep run-report schema v1 and are
  /// proven bit-identical to the legacy path.
  [[nodiscard]] bool degenerate() const noexcept {
    return !l3.has_value() && (!l2_shared || l2_clusters == 1) && !l2_partition.enabled() &&
           !l3_partition.enabled();
  }

  /// Check every structural invariant via SYM_CHECK (category
  /// "cachesim.topology" / "cachesim.partition"): cluster count divides the
  /// core count, line sizes agree across levels, partitions fit the
  /// associativity. Honors the ambient CheckMode (tests use
  /// ScopedCheckMode(Throw) to observe CheckError).
  void validate() const;

  /// "32 cores / 4x512KiB L2 / 2MiB L3" style summary for logs and reports.
  [[nodiscard]] std::string describe() const;
};

}  // namespace symbiosis::cachesim
