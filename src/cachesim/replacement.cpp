#include "cachesim/replacement.hpp"

#include <limits>
#include <stdexcept>

#include "util/check.hpp"
#include "util/hotpath.hpp"

namespace symbiosis::cachesim {

std::string to_string(ReplacementKind kind) {
  switch (kind) {
    case ReplacementKind::Lru: return "lru";
    case ReplacementKind::Fifo: return "fifo";
    case ReplacementKind::Random: return "random";
    case ReplacementKind::TreePlru: return "tree-plru";
    case ReplacementKind::Srrip: return "srrip";
  }
  return "?";
}

ReplacementKind parse_replacement(const std::string& name) {
  if (name == "lru") return ReplacementKind::Lru;
  if (name == "fifo") return ReplacementKind::Fifo;
  if (name == "random") return ReplacementKind::Random;
  if (name == "tree-plru") return ReplacementKind::TreePlru;
  if (name == "srrip") return ReplacementKind::Srrip;
  throw std::invalid_argument("unknown replacement policy: " + name);
}

namespace {

/// True LRU via a monotone 64-bit timestamp per line.
class LruPolicy final : public ReplacementPolicy {
 public:
  LruPolicy(std::size_t sets, std::size_t ways)
      : ways_(ways), stamp_(sets * ways, 0) {}

  SYM_HOT void on_touch(std::size_t set, std::size_t way) noexcept override {
    stamp_[set * ways_ + way] = ++clock_;
  }
  SYM_HOT void on_fill(std::size_t set, std::size_t way) noexcept override { on_touch(set, way); }

  SYM_HOT std::size_t victim(std::size_t set) noexcept override { return victim_in(set, 0, ways_); }

  SYM_HOT std::size_t victim_in(std::size_t set, std::size_t begin, std::size_t end) noexcept override {
    std::size_t best = begin;
    std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t w = begin; w < end; ++w) {
      const std::uint64_t s = stamp_[set * ways_ + w];
      if (s < oldest) {
        oldest = s;
        best = w;
      }
    }
    return best;
  }

  void reset() noexcept override {
    std::fill(stamp_.begin(), stamp_.end(), std::uint64_t{0});
    clock_ = 0;
  }

 private:
  std::size_t ways_;
  std::vector<std::uint64_t> stamp_;
  std::uint64_t clock_ = 0;
};

/// FIFO: victim is the oldest FILL (hits do not refresh).
class FifoPolicy final : public ReplacementPolicy {
 public:
  FifoPolicy(std::size_t sets, std::size_t ways)
      : ways_(ways), stamp_(sets * ways, 0) {}

  SYM_HOT void on_touch(std::size_t, std::size_t) noexcept override {}
  SYM_HOT void on_fill(std::size_t set, std::size_t way) noexcept override {
    stamp_[set * ways_ + way] = ++clock_;
  }

  SYM_HOT std::size_t victim(std::size_t set) noexcept override { return victim_in(set, 0, ways_); }

  SYM_HOT std::size_t victim_in(std::size_t set, std::size_t begin, std::size_t end) noexcept override {
    std::size_t best = begin;
    std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t w = begin; w < end; ++w) {
      const std::uint64_t s = stamp_[set * ways_ + w];
      if (s < oldest) {
        oldest = s;
        best = w;
      }
    }
    return best;
  }

  void reset() noexcept override {
    std::fill(stamp_.begin(), stamp_.end(), std::uint64_t{0});
    clock_ = 0;
  }

 private:
  std::size_t ways_;
  std::vector<std::uint64_t> stamp_;
  std::uint64_t clock_ = 0;
};

class RandomPolicy final : public ReplacementPolicy {
 public:
  RandomPolicy(std::size_t ways, std::uint64_t seed) : ways_(ways), rng_(seed) {}

  SYM_HOT void on_touch(std::size_t, std::size_t) noexcept override {}
  SYM_HOT void on_fill(std::size_t, std::size_t) noexcept override {}
  SYM_HOT std::size_t victim(std::size_t set) noexcept override { return victim_in(set, 0, ways_); }
  SYM_HOT std::size_t victim_in(std::size_t, std::size_t begin, std::size_t end) noexcept override {
    // One draw either way, so the unpartitioned call consumes the stream
    // exactly like the pre-partition victim() did.
    return begin + static_cast<std::size_t>(rng_.next_below(end - begin));
  }
  void reset() noexcept override {}

 private:
  std::size_t ways_;
  util::Rng rng_;
};

/// Static RRIP (SRRIP-HP, Jaleel et al. ISCA'10) with 2-bit re-reference
/// prediction values: fills predict "long" (RRPV = kMax - 1), hits promote
/// to "near-immediate" (RRPV = 0), and the victim search scans for an RRPV
/// of kMax, aging the whole (partition range of the) set until one appears.
/// Scan-resistant where LRU thrashes: a streaming workload's lines age out
/// before they displace the resident working set — exactly the co-runner
/// interference pattern the paper's Fig 3 measures on the shared L2.
class SrripPolicy final : public ReplacementPolicy {
 public:
  SrripPolicy(std::size_t sets, std::size_t ways)
      : ways_(ways), rrpv_(sets * ways, kMax) {}

  SYM_HOT void on_touch(std::size_t set, std::size_t way) noexcept override {
    rrpv_[set * ways_ + way] = 0;
  }
  SYM_HOT void on_fill(std::size_t set, std::size_t way) noexcept override {
    rrpv_[set * ways_ + way] = kMax - 1;
  }

  SYM_HOT std::size_t victim(std::size_t set) noexcept override { return victim_in(set, 0, ways_); }

  SYM_HOT std::size_t victim_in(std::size_t set, std::size_t begin, std::size_t end) noexcept override {
    std::uint8_t* const row = &rrpv_[set * ways_];
    for (;;) {
      for (std::size_t w = begin; w < end; ++w) {
        if (row[w] == kMax) return w;
      }
      // Age the range; terminates because some RRPV strictly increases each
      // round (all values are <= kMax and the range is non-empty).
      for (std::size_t w = begin; w < end; ++w) ++row[w];
    }
  }

  void reset() noexcept override { std::fill(rrpv_.begin(), rrpv_.end(), kMax); }

 private:
  static constexpr std::uint8_t kMax = 3;  // 2-bit RRPV

  std::size_t ways_;
  std::vector<std::uint8_t> rrpv_;
};

/// Tree pseudo-LRU: a binary decision tree of (ways-1) bits per set.
/// Requires power-of-two associativity.
class TreePlruPolicy final : public ReplacementPolicy {
 public:
  TreePlruPolicy(std::size_t sets, std::size_t ways)
      : ways_(ways), tree_(sets * (ways > 1 ? ways - 1 : 1), 0) {
    if (ways == 0 || (ways & (ways - 1)) != 0) {
      throw std::invalid_argument("TreePlru requires power-of-two associativity");
    }
  }

  SYM_HOT void on_touch(std::size_t set, std::size_t way) noexcept override {
    // Walk from the root toward the leaf, pointing each node AWAY from way.
    std::uint8_t* nodes = &tree_[set * (ways_ - 1)];
    std::size_t node = 0;
    std::size_t lo = 0, hi = ways_;
    while (hi - lo > 1) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (way < mid) {
        nodes[node] = 1;  // next victim search goes right
        node = 2 * node + 1;
        hi = mid;
      } else {
        nodes[node] = 0;  // next victim search goes left
        node = 2 * node + 2;
        lo = mid;
      }
    }
  }

  SYM_HOT void on_fill(std::size_t set, std::size_t way) noexcept override { on_touch(set, way); }

  SYM_HOT std::size_t victim_in(std::size_t set, std::size_t begin, std::size_t end) noexcept override {
    // The decision tree spans the whole set; a sub-range walk would need
    // per-range trees. Cache::set_partition rejects tree-PLRU via
    // supports_partitioning(), so only the full range can reach here.
    SYM_DCHECK(begin == 0 && end == ways_, "cachesim.replacement")
        << "tree-PLRU cannot confine victims to a way range";
    (void)begin;
    (void)end;
    return victim(set);
  }

  [[nodiscard]] bool supports_partitioning() const noexcept override { return false; }

  SYM_HOT std::size_t victim(std::size_t set) noexcept override {
    const std::uint8_t* nodes = &tree_[set * (ways_ - 1)];
    std::size_t node = 0;
    std::size_t lo = 0, hi = ways_;
    while (hi - lo > 1) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (nodes[node] == 0) {
        node = 2 * node + 1;
        hi = mid;
      } else {
        node = 2 * node + 2;
        lo = mid;
      }
    }
    // Replacement-stack integrity: the walk must land on a real leaf and
    // never read past this set's (ways - 1) tree nodes.
    SYM_DCHECK_LT(lo, ways_, "cachesim.replacement") << "tree-PLRU walk escaped the set";
    SYM_DCHECK_LT(node, 2 * ways_ - 1, "cachesim.replacement");
    return lo;
  }

  void reset() noexcept override { std::fill(tree_.begin(), tree_.end(), std::uint8_t{0}); }

 private:
  std::size_t ways_;
  std::vector<std::uint8_t> tree_;
};

}  // namespace

std::unique_ptr<ReplacementPolicy> make_replacement(ReplacementKind kind, std::size_t sets,
                                                    std::size_t ways, std::uint64_t seed) {
  switch (kind) {
    case ReplacementKind::Lru: return std::make_unique<LruPolicy>(sets, ways);
    case ReplacementKind::Fifo: return std::make_unique<FifoPolicy>(sets, ways);
    case ReplacementKind::Random: return std::make_unique<RandomPolicy>(ways, seed);
    case ReplacementKind::TreePlru: return std::make_unique<TreePlruPolicy>(sets, ways);
    case ReplacementKind::Srrip: return std::make_unique<SrripPolicy>(sets, ways);
  }
  throw std::invalid_argument("make_replacement: bad kind");
}

}  // namespace symbiosis::cachesim
