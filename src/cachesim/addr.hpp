// addr.hpp — address types and cache geometry arithmetic.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "util/bitops.hpp"

namespace symbiosis::cachesim {

/// Byte address in the simulated physical address space.
using Addr = std::uint64_t;
/// Cache-line address: byte address >> line_bits.
using LineAddr = std::uint64_t;

/// Geometry of one set-associative cache level.
struct CacheGeometry {
  std::size_t size_bytes = 4 * 1024 * 1024;
  std::size_t ways = 16;
  std::size_t line_bytes = 64;

  [[nodiscard]] std::size_t lines() const noexcept { return size_bytes / line_bytes; }
  [[nodiscard]] std::size_t sets() const noexcept { return lines() / ways; }
  [[nodiscard]] unsigned line_bits() const noexcept { return util::floor_log2(line_bytes); }
  [[nodiscard]] unsigned set_bits() const noexcept { return util::floor_log2(sets()); }

  [[nodiscard]] LineAddr line_of(Addr addr) const noexcept { return addr >> line_bits(); }
  [[nodiscard]] std::size_t set_of(LineAddr line) const noexcept {
    return static_cast<std::size_t>(line & (sets() - 1));
  }
  [[nodiscard]] std::uint64_t tag_of(LineAddr line) const noexcept { return line >> set_bits(); }

  /// Validate power-of-two invariants; throws std::invalid_argument.
  void validate() const {
    if (line_bytes == 0 || !util::is_pow2(line_bytes)) {
      throw std::invalid_argument("CacheGeometry: line_bytes must be a power of two");
    }
    if (ways == 0 || size_bytes % (ways * line_bytes) != 0) {
      throw std::invalid_argument("CacheGeometry: size must be a multiple of ways*line");
    }
    if (!util::is_pow2(sets())) {
      throw std::invalid_argument("CacheGeometry: set count must be a power of two");
    }
  }

  [[nodiscard]] std::string describe() const {
    return std::to_string(size_bytes / 1024) + "KB/" + std::to_string(ways) + "way/" +
           std::to_string(line_bytes) + "B";
  }
};

}  // namespace symbiosis::cachesim
