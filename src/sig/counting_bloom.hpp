// counting_bloom.hpp — Counting Bloom Filter (CBF) with L-bit counters.
//
// §2.4: the CBF replaces the Bloom filter's bits with small saturating
// counters so entries can be deleted when cache lines are evicted. The
// paper's hardware uses 3-bit counters (§5.4) and increments/decrements a
// counter only once per address even when multiple hash functions collide
// on the same index.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sig/hash.hpp"

namespace symbiosis::sig {

/// The distinct hash indices of one line address, hashed once and reusable
/// across insert/remove/query (the replay hot path pairs a fill with a
/// later eviction of the same line — hashing once per event pair halves the
/// hash work).
struct BloomIndices {
  unsigned count = 0;
  std::size_t idx[8];
};

/// Counting Bloom filter over line addresses.
class CountingBloomFilter {
 public:
  /// Hard ceiling on k (must match BloomIndices::idx capacity).
  static constexpr unsigned kMaxHashes = 8;

  /// @param entries       counter-array size
  /// @param counter_bits  counter width L (1..16); counters saturate at
  ///                      2^L - 1 instead of wrapping
  /// @param k             number of hash functions (>= 1; paper uses 1)
  /// @param kind          index hash family
  CountingBloomFilter(std::size_t entries, unsigned counter_bits, unsigned k = 1,
                      HashKind kind = HashKind::Xor);

  /// Precompute the distinct indices of the k hashes for @p line.
  [[nodiscard]] BloomIndices indices_of(LineAddr line) const noexcept;

  /// Record an address entering the set (cache fill). Each distinct index
  /// among the k hashes is incremented once (saturating).
  void insert(LineAddr line) noexcept { insert(indices_of(line)); }
  /// insert() with indices hashed earlier via indices_of().
  void insert(const BloomIndices& indices) noexcept;

  /// Record an address leaving the set (cache eviction). Each distinct index
  /// is decremented once; decrementing a zero or saturated counter is a
  /// no-op (a saturated counter has lost its exact count and can never be
  /// safely decremented — this models the hardware's stuck-at-max policy).
  void remove(LineAddr line) noexcept { remove(indices_of(line)); }
  /// remove() with indices hashed earlier via indices_of().
  void remove(const BloomIndices& indices) noexcept;

  /// Query: false = true miss (definitely absent); true = inconclusive.
  [[nodiscard]] bool maybe_contains(LineAddr line) const noexcept;
  /// maybe_contains() with indices hashed earlier via indices_of().
  [[nodiscard]] bool maybe_contains(const BloomIndices& indices) const noexcept;

  void reset() noexcept;

  /// Age every counter one step: values strictly between 0 and the
  /// saturation value are decremented; zero stays zero and a saturated
  /// counter stays put (stuck-at-max, the same policy as remove()). Lets a
  /// long-running monitor fade stale footprint information between
  /// allocator epochs without a full reset. Runs as one bulk kernel pass
  /// over the packed counter array (sig/kernels.hpp).
  void decay() noexcept;

  /// Saturating counter-wise union with @p other (same entries and counter
  /// width): this[i] = min(this[i] + other[i], max). Combines two sampled
  /// signature windows into one; also a bulk kernel pass when packed.
  void merge_saturating(const CountingBloomFilter& other);

  [[nodiscard]] std::size_t entries() const noexcept { return entries_; }
  [[nodiscard]] unsigned counter_bits() const noexcept { return counter_bits_; }
  [[nodiscard]] unsigned hash_count() const noexcept { return k_; }
  /// True when counters live in the packed nibble array (counter_bits <= 4,
  /// which covers the paper's 3-bit configuration): two counters per byte,
  /// low nibble = even index, enabling the bulk SIMD passes.
  [[nodiscard]] bool packed() const noexcept { return packed_; }

  /// Number of non-zero counters (the CBF "occupancy weight" analogue).
  [[nodiscard]] std::size_t nonzero_count() const noexcept { return nonzero_; }

  /// Number of counters pinned at the saturation value (diagnostics; a
  /// correctly provisioned L per footnote 1 keeps this at zero).
  [[nodiscard]] std::size_t saturated_count() const noexcept;

  [[nodiscard]] std::uint16_t counter_at(std::size_t i) const;

  /// Full O(entries) consistency audit via SYM_CHECK: the cached nonzero
  /// count matches a recount, no counter exceeds the saturation value, and
  /// the padding nibble of an odd packed array stays zero. Cheap enough
  /// for tests and periodic soak-run sweeps, too slow per-op.
  void validate() const;

 private:
  /// Current value of counter @p i, whichever store it lives in.
  [[nodiscard]] std::uint16_t counter_value(std::size_t i) const noexcept {
    return packed_ ? static_cast<std::uint16_t>((nibbles_[i >> 1] >> ((i & 1u) * 4u)) & 0x0fu)
                   : counters_[i];
  }

  IndexHash hash_;
  unsigned counter_bits_;
  unsigned k_;
  std::uint16_t max_value_;
  std::size_t entries_;
  bool packed_;                          ///< counter_bits_ <= 4: nibble storage
  std::vector<std::uint8_t> nibbles_;    ///< packed counters, two per byte
  std::vector<std::uint16_t> counters_;  ///< wide counters (counter_bits_ > 4)
  std::size_t nonzero_ = 0;
};

}  // namespace symbiosis::sig
