// bloom.hpp — classic (non-counting) Bloom filter.
//
// §2.4 background structure: k hash functions over a 2^m bit vector, no
// deletion. Kept as a reference implementation for tests and for the
// multi-hash saturation ablation (the paper argues k = 1 is the right
// choice for small filters; bench_fig14 measures why).
#pragma once

#include <cstddef>

#include "sig/bitvector.hpp"
#include "sig/hash.hpp"

namespace symbiosis::sig {

/// Classic Bloom filter with k derived hash functions.
class BloomFilter {
 public:
  /// @param entries  bit-vector size (power of two for XOR-family hashes)
  /// @param k        number of hash functions (>= 1)
  /// @param kind     index hash family
  BloomFilter(std::size_t entries, unsigned k, HashKind kind = HashKind::Xor);

  /// Insert a line address (sets k bits).
  void insert(LineAddr line) noexcept;

  /// Query: false = definitely not present (true miss); true = maybe present.
  [[nodiscard]] bool maybe_contains(LineAddr line) const noexcept;

  /// Remove all entries.
  void reset() noexcept { bits_.reset(); }

  [[nodiscard]] std::size_t entries() const noexcept { return bits_.size(); }
  [[nodiscard]] unsigned hash_count() const noexcept { return k_; }
  [[nodiscard]] std::size_t ones() const noexcept { return bits_.popcount(); }
  [[nodiscard]] double fill_ratio() const noexcept { return bits_.fill_ratio(); }

  /// Theoretical false-positive probability after @p inserted distinct keys:
  /// (1 - e^{-k n / m})^k.
  [[nodiscard]] double theoretical_fpp(std::size_t inserted) const noexcept;

 private:
  IndexHash hash_;
  unsigned k_;
  BitVector bits_;
};

}  // namespace symbiosis::sig
