// signature.hpp — the per-process (or per-VM) signature record.
//
// §3.2: for each application the OS/hypervisor keeps a (2 + N)-entry
// structure — last core, occupancy weight, and symbiosis with each of the
// N cores — updated at every context switch from the FilterUnit's RBV.
// ProcessSignature additionally keeps windowed means so the user-level
// allocator (invoked every ~100 ms, i.e. every many context switches) sees
// a stable aggregate rather than one noisy quantum.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace symbiosis::sig {

/// One context-switch-out measurement.
struct SignatureSample {
  std::size_t core = 0;                 ///< core the process just ran on
  std::size_t occupancy_weight = 0;     ///< popcount(RBV)
  std::vector<std::size_t> symbiosis;   ///< popcount(RBV XOR CF[c]) per core c
};

/// Aggregated signature state carried in a process/VM control block.
class ProcessSignature {
 public:
  explicit ProcessSignature(std::size_t num_cores = 0) { resize(num_cores); }

  void resize(std::size_t num_cores);
  [[nodiscard]] std::size_t num_cores() const noexcept { return sym_sum_.size(); }

  /// Record one switch-out sample (updates latest values and window means).
  void record(const SignatureSample& sample);

  /// Drop windowed accumulation (latest values survive). The allocator
  /// calls this after each invocation so each decision window is fresh.
  void clear_window() noexcept;

  // --- latest values (the paper's raw (2+N) structure) ---
  [[nodiscard]] std::size_t last_core() const noexcept { return last_core_; }
  [[nodiscard]] std::size_t latest_occupancy() const noexcept { return latest_occupancy_; }
  [[nodiscard]] std::size_t latest_symbiosis(std::size_t core) const {
    return latest_sym_.at(core);
  }

  // --- windowed means (what the allocator consumes) ---
  [[nodiscard]] std::size_t samples() const noexcept { return samples_; }
  [[nodiscard]] double mean_occupancy() const noexcept;
  [[nodiscard]] double mean_symbiosis(std::size_t core) const;
  /// Mean symbiosis with every core EXCEPT the process's own last core
  /// (self-symbiosis compares the RBV against the CF it came from and is
  /// not meaningful for placement).
  [[nodiscard]] double mean_cross_symbiosis() const;

  /// Interference metric = 1 / symbiosis (§3.3.2); symbiosis of zero maps
  /// to a large finite value so the graph stays well-defined.
  [[nodiscard]] double interference_with(std::size_t core) const;

 private:
  std::size_t last_core_ = 0;
  std::size_t latest_occupancy_ = 0;
  std::vector<std::size_t> latest_sym_;

  std::size_t samples_ = 0;
  double occ_sum_ = 0.0;
  double cross_sum_ = 0.0;
  std::size_t cross_n_ = 0;
  std::vector<double> sym_sum_;
  std::vector<std::size_t> sym_samples_;
};

}  // namespace symbiosis::sig
