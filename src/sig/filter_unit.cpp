#include "sig/filter_unit.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "sig/kernels.hpp"
#include "util/check.hpp"
#include "util/hotpath.hpp"

#include "util/bitops.hpp"

namespace symbiosis::sig {

FilterUnit::FilterUnit(FilterUnitConfig config)
    : config_(config),
      presence_mode_(config.hash == HashKind::Presence),
      single_index_(presence_mode_ || config.hash_functions == 1),
      counter_max_(static_cast<std::uint16_t>((1u << config.counter_bits) - 1)),
      counters_(config.entries(), 0) {
  if (config.num_cores == 0) throw std::invalid_argument("FilterUnit: num_cores must be > 0");
  if (!util::is_pow2(config.cache_sets)) {
    throw std::invalid_argument("FilterUnit: cache_sets must be a power of two");
  }
  if (config.counter_bits == 0 || config.counter_bits > 16) {
    throw std::invalid_argument("FilterUnit: counter_bits must be in [1, 16]");
  }
  if ((config.cache_sets >> config.sample_shift) == 0) {
    throw std::invalid_argument("FilterUnit: sample_shift leaves no sampled sets");
  }
  if (config.hash_functions == 0 || config.hash_functions > kMaxHashFunctions) {
    throw std::invalid_argument("FilterUnit: hash_functions must be in [1, 8]");
  }
  if (!presence_mode_) {
    hash_.emplace(config.hash, config.entries());
  }
  cf_.assign(config.num_cores, BitVector(config.entries()));
  lf_.assign(config.num_cores, BitVector(config.entries()));
}

SYM_HOT unsigned FilterUnit::indices_of(LineAddr line, std::size_t set, std::size_t way,
                                std::size_t* out) const noexcept {
  if (!config_.sampled(set)) return 0;
  if (presence_mode_) {
    // Positional: one bit per sampled physical cache line.
    out[0] = (set >> config_.sample_shift) * config_.cache_ways + way;
    return 1;
  }
  // k derived hashes; duplicates are collapsed so a counter moves at most
  // once per event (§2.4's rule). The paper uses k = 1; larger k exists for
  // the Fig 14 saturation ablation.
  unsigned n = 0;
  for (unsigned k = 0; k < config_.hash_functions; ++k) {
    const std::size_t idx = hash_->index_k(line, k);
    bool duplicate = false;
    for (unsigned j = 0; j < n; ++j) {
      if (out[j] == idx) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) out[n++] = idx;
  }
  return n;
}

SYM_HOT void FilterUnit::on_fill(LineAddr line, std::size_t core, std::size_t set,
                         std::size_t way) noexcept {
  SYM_DCHECK_BOUNDS(core, cf_.size(), "sig.filter");
  SYM_DCHECK_LT(way, config_.cache_ways, "sig.filter") << "fill way out of range";
  if (single_index_) {
    // Hot path (presence mode or the paper's k = 1): one index, no dedup.
    if (!config_.sampled(set)) return;
    const std::size_t idx = single_index_of(line, set, way);
    SYM_DCHECK_BOUNDS(idx, counters_.size(), "sig.filter") << "filter index out of range";
    auto& counter = counters_[idx];
    if (counter < counter_max_) ++counter;  // saturate, never wrap
    cf_[core].set(idx);
    return;
  }
  std::size_t idx[kMaxHashFunctions];
  const unsigned n = indices_of(line, set, way, idx);
  for (unsigned i = 0; i < n; ++i) {
    SYM_DCHECK_BOUNDS(idx[i], counters_.size(), "sig.filter") << "filter index out of range";
    auto& counter = counters_[idx[i]];
    if (counter < counter_max_) ++counter;  // saturate, never wrap
    cf_[core].set(idx[i]);
  }
}

SYM_HOT void FilterUnit::on_evict(LineAddr line, std::size_t set, std::size_t way) noexcept {
  if (single_index_) {
    if (!config_.sampled(set)) return;
    const std::size_t idx = single_index_of(line, set, way);
    SYM_DCHECK_BOUNDS(idx, counters_.size(), "sig.filter") << "filter index out of range";
    auto& counter = counters_[idx];
    if (counter == 0 || counter == counter_max_) return;  // underflow / stuck-at-max
    if (--counter == 0) {
      for (auto& cf : cf_) cf.clear(idx);
    }
    return;
  }
  std::size_t idx[kMaxHashFunctions];
  const unsigned n = indices_of(line, set, way, idx);
  for (unsigned i = 0; i < n; ++i) {
    SYM_DCHECK_BOUNDS(idx[i], counters_.size(), "sig.filter") << "filter index out of range";
    auto& counter = counters_[idx[i]];
    if (counter == 0 || counter == counter_max_) continue;  // underflow / stuck-at-max
    if (--counter == 0) {
      // §3.1: when the shared counter drains, the index is cleared in EVERY
      // core filter — the line(s) that set those bits are all gone.
      for (auto& cf : cf_) cf.clear(idx[i]);
    }
  }
}

void FilterUnit::snapshot(std::size_t core) noexcept {
  SYM_DCHECK_BOUNDS(core, cf_.size(), "sig.filter");
  lf_[core].assign(cf_[core]);
  static obs::Counter& snapshots = obs::counter("sig.filter.snapshots");
  snapshots.add(1);
}

BitVector FilterUnit::compute_rbv(std::size_t core) const {
  BitVector rbv(counters_.size());
  rbv.assign_and_not(cf_.at(core), lf_.at(core));
  return rbv;
}

std::size_t FilterUnit::symbiosis(const BitVector& rbv, std::size_t other_core) const noexcept {
  SYM_DCHECK_BOUNDS(other_core, cf_.size(), "sig.filter");
  SYM_DCHECK_EQ(rbv.size(), counters_.size(), "sig.filter") << "RBV width != filter entries";
  return rbv.xor_popcount(cf_[other_core]);
}

std::size_t FilterUnit::self_symbiosis(const BitVector& rbv, std::size_t core) const noexcept {
  SYM_DCHECK_BOUNDS(core, lf_.size(), "sig.filter");
  SYM_DCHECK_EQ(rbv.size(), counters_.size(), "sig.filter") << "RBV width != filter entries";
  return rbv.xor_popcount(lf_[core]);
}

SYM_HOT void FilterUnit::symbiosis_all(const BitVector& rbv, std::size_t self_core,
                                       std::size_t* out) const noexcept {
  SYM_DCHECK_BOUNDS(self_core, cf_.size(), "sig.filter");
  SYM_DCHECK_EQ(rbv.size(), counters_.size(), "sig.filter") << "RBV width != filter entries";
  // Gather the per-core filter word pointers (LF for the self core, CF for
  // the rest) in fixed-size chunks so the pointer table stays on the stack
  // for any cluster width.
  constexpr std::size_t kChunk = 64;
  const std::uint64_t* ptrs[kChunk];
  const std::uint64_t* rbv_words = rbv.words().data();
  const std::size_t words = rbv.words().size();
  for (std::size_t base = 0; base < cf_.size(); base += kChunk) {
    const std::size_t n = std::min(kChunk, cf_.size() - base);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t core = base + i;
      ptrs[i] = (core == self_core ? lf_[core] : cf_[core]).words().data();
    }
    // symhot: indirect(SIMD kernel table dispatch; the bound backend's kernels are SYM_HOT roots)
    kernels::ops().xor_popcount_many(rbv_words, ptrs, n, words, out + base);
  }
}

std::vector<std::size_t> FilterUnit::symbiosis_all(const BitVector& rbv,
                                                   std::size_t self_core) const {
  std::vector<std::size_t> out(cf_.size());
  symbiosis_all(rbv, self_core, out.data());
  return out;
}

std::size_t FilterUnit::core_filter_weight(std::size_t core) const noexcept {
  SYM_DCHECK_BOUNDS(core, cf_.size(), "sig.filter");
  return cf_[core].popcount();
}

void FilterUnit::reset() noexcept {
  std::fill(counters_.begin(), counters_.end(), std::uint16_t{0});
  for (auto& cf : cf_) cf.reset();
  for (auto& lf : lf_) lf.reset();
}

void FilterUnit::validate() const {
  for (std::size_t c = 0; c < cf_.size(); ++c) {
    SYM_CHECK_EQ(cf_[c].size(), counters_.size(), "sig.filter") << "CF width != entries";
    SYM_CHECK_EQ(lf_[c].size(), counters_.size(), "sig.filter") << "LF width != entries";
  }
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    SYM_CHECK_LE(counters_[i], counter_max_, "sig.filter") << "counter exceeds saturation";
    if (counters_[i] != 0) continue;
    for (std::size_t c = 0; c < cf_.size(); ++c) {
      SYM_CHECK(!cf_[c].test(i), "sig.filter")
          << "CF bit " << i << " set for core " << c << " with a drained counter";
    }
  }
}

std::size_t FilterUnit::saturated_counters() const noexcept {
  return static_cast<std::size_t>(
      std::count(counters_.begin(), counters_.end(), counter_max_));
}

}  // namespace symbiosis::sig
