// hash.hpp — the Bloom-filter index hash functions evaluated in the paper.
//
// §5.3 compares four hardware-friendly hash functions for mapping a cache
// block address to a Bloom-filter index:
//   * XOR            — fold the block address into index-width chunks, XOR.
//   * XOR inv/rev    — XOR fold, then bitwise invert and bit-reverse.
//   * Modulo         — block address mod filter size.
//   * Presence bits  — no hash at all: a 1:1 bit per physical cache line
//                      (handled by the signature unit via (set, way), see
//                      sig/filter_unit.hpp), included here only as an enum.
// A multiplicative mixer is included as a software-quality reference point
// for tests (it is NOT hardware-cheap and the paper does not use it).
#pragma once

#include <cstdint>
#include <string>

namespace symbiosis::sig {

/// Cache-line (block) address: byte address >> line_bits.
using LineAddr = std::uint64_t;

enum class HashKind {
  Xor,                ///< XOR-fold of index-width chunks (paper default)
  XorInverseReverse,  ///< XOR-fold, then invert + bit-reverse
  Modulo,             ///< line address modulo filter entries
  Presence,           ///< 1:1 presence bit per cache line (positional, no hash)
  Multiply,           ///< Fibonacci multiplicative mixing (software reference)
};

/// Human-readable name ("xor", "xor-inv-rev", "modulo", "presence", "multiply").
[[nodiscard]] std::string to_string(HashKind kind);

/// Parse a hash name; throws std::invalid_argument on unknown names.
[[nodiscard]] HashKind parse_hash_kind(const std::string& name);

/// Stateless Bloom index hash over line addresses.
///
/// `entries` must be a power of two for Xor/XorInverseReverse/Multiply
/// (the fold width is log2(entries)); Modulo accepts any entries > 0.
class IndexHash {
 public:
  IndexHash(HashKind kind, std::size_t entries);

  /// Map a line address to an index in [0, entries).
  [[nodiscard]] std::size_t index(LineAddr line) const noexcept;

  /// Derive the i-th independent hash (for multi-hash Bloom filters):
  /// the line address is pre-mixed with a per-function odd constant.
  [[nodiscard]] std::size_t index_k(LineAddr line, unsigned k) const noexcept;

  [[nodiscard]] HashKind kind() const noexcept { return kind_; }
  [[nodiscard]] std::size_t entries() const noexcept { return entries_; }
  [[nodiscard]] unsigned index_bits() const noexcept { return index_bits_; }

 private:
  HashKind kind_;
  std::size_t entries_;
  unsigned index_bits_;
};

}  // namespace symbiosis::sig
