// hash.hpp — the Bloom-filter index hash functions evaluated in the paper.
//
// §5.3 compares four hardware-friendly hash functions for mapping a cache
// block address to a Bloom-filter index:
//   * XOR            — fold the block address into index-width chunks, XOR.
//   * XOR inv/rev    — XOR fold, then bitwise invert and bit-reverse.
//   * Modulo         — block address mod filter size.
//   * Presence bits  — no hash at all: a 1:1 bit per physical cache line
//                      (handled by the signature unit via (set, way), see
//                      sig/filter_unit.hpp), included here only as an enum.
// A multiplicative mixer is included as a software-quality reference point
// for tests (it is NOT hardware-cheap and the paper does not use it).
#pragma once

#include <cstdint>
#include <string>

#include "util/bitops.hpp"

namespace symbiosis::sig {

/// Cache-line (block) address: byte address >> line_bits.
using LineAddr = std::uint64_t;

enum class HashKind {
  Xor,                ///< XOR-fold of index-width chunks (paper default)
  XorInverseReverse,  ///< XOR-fold, then invert + bit-reverse
  Modulo,             ///< line address modulo filter entries
  Presence,           ///< 1:1 presence bit per cache line (positional, no hash)
  Multiply,           ///< Fibonacci multiplicative mixing (software reference)
};

/// Human-readable name ("xor", "xor-inv-rev", "modulo", "presence", "multiply").
[[nodiscard]] std::string to_string(HashKind kind);

/// Parse a hash name; throws std::invalid_argument on unknown names.
[[nodiscard]] HashKind parse_hash_kind(const std::string& name);

/// Stateless Bloom index hash over line addresses.
///
/// `entries` must be a power of two for Xor/XorInverseReverse/Multiply
/// (the fold width is log2(entries)); Modulo accepts any entries > 0.
class IndexHash {
 public:
  IndexHash(HashKind kind, std::size_t entries);

  /// Map a line address to an index in [0, entries).
  ///
  /// Defined inline: this is the innermost kernel of every Bloom update on
  /// the simulation hot path, and the call sites (CountingBloomFilter,
  /// FilterUnit) live in other translation units.
  [[nodiscard]] std::size_t index(LineAddr line) const noexcept {
    switch (kind_) {
      case HashKind::Xor:
        return static_cast<std::size_t>(xor_fold(line) & util::low_mask(index_bits_));
      case HashKind::XorInverseReverse: {
        const std::uint64_t acc = ~xor_fold(line) & util::low_mask(index_bits_);
        return static_cast<std::size_t>(util::reverse_bits(acc, index_bits_));
      }
      case HashKind::Modulo:
        return static_cast<std::size_t>(line % entries_);
      case HashKind::Multiply: {
        const std::uint64_t mixed = line * 0x9e3779b97f4a7c15ull;
        return static_cast<std::size_t>(mixed >> (64 - index_bits_));
      }
      case HashKind::Presence:
        return 0;  // unreachable: rejected in the constructor
    }
    return 0;
  }

  /// Derive the i-th independent hash (for multi-hash Bloom filters):
  /// the line address is pre-mixed with a per-function odd constant.
  [[nodiscard]] std::size_t index_k(LineAddr line, unsigned k) const noexcept {
    if (k == 0) return index(line);
    // Pre-mix with a per-function odd constant so the k functions differ;
    // the mixing is cheap XOR/shift only, keeping the hardware-cost
    // argument valid.
    const std::uint64_t salt = 0x9e3779b97f4a7c15ull * (2ull * k + 1ull);
    const LineAddr mixed = line ^ (salt >> 13) ^ (line << (k % 7 + 1));
    return index(mixed);
  }

  [[nodiscard]] HashKind kind() const noexcept { return kind_; }
  [[nodiscard]] std::size_t entries() const noexcept { return entries_; }
  [[nodiscard]] unsigned index_bits() const noexcept { return index_bits_; }

 private:
  /// Fold the 64-bit line address into index_bits_-wide chunks and XOR them.
  [[nodiscard]] std::uint64_t xor_fold(LineAddr line) const noexcept {
    std::uint64_t acc = 0;
    for (unsigned lo = 0; lo < 64; lo += index_bits_) {
      acc ^= util::bits(line, lo, index_bits_);
    }
    return acc;
  }

  HashKind kind_;
  std::size_t entries_;
  unsigned index_bits_;
};

}  // namespace symbiosis::sig
