#include "sig/counting_bloom.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/check.hpp"

namespace symbiosis::sig {

CountingBloomFilter::CountingBloomFilter(std::size_t entries, unsigned counter_bits, unsigned k,
                                         HashKind kind)
    : hash_(kind, entries),
      counter_bits_(counter_bits),
      k_(k),
      max_value_(static_cast<std::uint16_t>((1u << counter_bits) - 1)),
      counters_(entries, 0) {
  if (counter_bits == 0 || counter_bits > 16) {
    throw std::invalid_argument("CountingBloomFilter: counter_bits must be in [1, 16]");
  }
  if (k == 0 || k > kMaxHashes) {
    throw std::invalid_argument("CountingBloomFilter: k must be in [1, 8]");
  }
}

BloomIndices CountingBloomFilter::indices_of(LineAddr line) const noexcept {
  BloomIndices out;
  if (k_ == 1) {
    // The paper's configuration: one hash, no dedup pass needed.
    out.idx[0] = hash_.index(line);
    out.count = 1;
    return out;
  }
  for (unsigned i = 0; i < k_; ++i) {
    const std::size_t idx = hash_.index_k(line, i);
    bool duplicate = false;
    for (unsigned j = 0; j < out.count; ++j) {
      if (out.idx[j] == idx) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) out.idx[out.count++] = idx;
  }
  return out;
}

void CountingBloomFilter::insert(const BloomIndices& indices) noexcept {
  for (unsigned i = 0; i < indices.count; ++i) {
    SYM_DCHECK_BOUNDS(indices.idx[i], counters_.size(), "sig.cbf") << "hash index out of range";
    auto& counter = counters_[indices.idx[i]];
    if (counter == 0) ++nonzero_;
    if (counter < max_value_) ++counter;  // saturate, never wrap
  }
}

void CountingBloomFilter::remove(const BloomIndices& indices) noexcept {
  for (unsigned i = 0; i < indices.count; ++i) {
    SYM_DCHECK_BOUNDS(indices.idx[i], counters_.size(), "sig.cbf") << "hash index out of range";
    auto& counter = counters_[indices.idx[i]];
    if (counter == 0 || counter == max_value_) continue;  // underflow / stuck-at-max
    --counter;
    if (counter == 0) {
      SYM_DCHECK(nonzero_ > 0, "sig.cbf") << "nonzero_ bookkeeping underflow";
      --nonzero_;
    }
  }
  SYM_DCHECK_LE(nonzero_, counters_.size(), "sig.cbf");
}

bool CountingBloomFilter::maybe_contains(LineAddr line) const noexcept {
  return maybe_contains(indices_of(line));
}

bool CountingBloomFilter::maybe_contains(const BloomIndices& indices) const noexcept {
  for (unsigned i = 0; i < indices.count; ++i) {
    if (counters_[indices.idx[i]] == 0) return false;
  }
  return true;
}

void CountingBloomFilter::reset() noexcept {
  std::fill(counters_.begin(), counters_.end(), std::uint16_t{0});
  nonzero_ = 0;
}

void CountingBloomFilter::validate() const {
  std::size_t nonzero = 0;
  for (const auto counter : counters_) {
    SYM_CHECK_LE(counter, max_value_, "sig.cbf") << "counter exceeds saturation value";
    if (counter != 0) ++nonzero;
  }
  SYM_CHECK_EQ(nonzero, nonzero_, "sig.cbf") << "cached nonzero count out of sync";
}

std::size_t CountingBloomFilter::saturated_count() const noexcept {
  return static_cast<std::size_t>(
      std::count(counters_.begin(), counters_.end(), max_value_));
}

}  // namespace symbiosis::sig
