#include "sig/counting_bloom.hpp"

#include <algorithm>
#include <stdexcept>

#include "sig/kernels.hpp"
#include "util/check.hpp"
#include "util/hotpath.hpp"

namespace symbiosis::sig {

CountingBloomFilter::CountingBloomFilter(std::size_t entries, unsigned counter_bits, unsigned k,
                                         HashKind kind)
    : hash_(kind, entries),
      counter_bits_(counter_bits),
      k_(k),
      max_value_(static_cast<std::uint16_t>((1u << counter_bits) - 1)),
      entries_(entries),
      packed_(counter_bits >= 1 && counter_bits <= 4) {
  if (counter_bits == 0 || counter_bits > 16) {
    throw std::invalid_argument("CountingBloomFilter: counter_bits must be in [1, 16]");
  }
  if (k == 0 || k > kMaxHashes) {
    throw std::invalid_argument("CountingBloomFilter: k must be in [1, 8]");
  }
  if (packed_) {
    nibbles_.assign((entries + 1) / 2, 0);
  } else {
    counters_.assign(entries, 0);
  }
}

SYM_HOT BloomIndices CountingBloomFilter::indices_of(LineAddr line) const noexcept {
  BloomIndices out;
  if (k_ == 1) {
    // The paper's configuration: one hash, no dedup pass needed.
    out.idx[0] = hash_.index(line);
    out.count = 1;
    return out;
  }
  for (unsigned i = 0; i < k_; ++i) {
    const std::size_t idx = hash_.index_k(line, i);
    bool duplicate = false;
    for (unsigned j = 0; j < out.count; ++j) {
      if (out.idx[j] == idx) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) out.idx[out.count++] = idx;
  }
  return out;
}

SYM_HOT void CountingBloomFilter::insert(const BloomIndices& indices) noexcept {
  if (packed_) {
    for (unsigned i = 0; i < indices.count; ++i) {
      const std::size_t idx = indices.idx[i];
      SYM_DCHECK_BOUNDS(idx, entries_, "sig.cbf") << "hash index out of range";
      std::uint8_t& slot = nibbles_[idx >> 1];
      const unsigned shift = (idx & 1u) * 4u;
      const std::uint8_t value = (slot >> shift) & 0x0fu;
      if (value == 0) ++nonzero_;
      if (value < max_value_) slot = static_cast<std::uint8_t>(slot + (1u << shift));
    }
    return;
  }
  for (unsigned i = 0; i < indices.count; ++i) {
    SYM_DCHECK_BOUNDS(indices.idx[i], entries_, "sig.cbf") << "hash index out of range";
    auto& counter = counters_[indices.idx[i]];
    if (counter == 0) ++nonzero_;
    if (counter < max_value_) ++counter;  // saturate, never wrap
  }
}

SYM_HOT void CountingBloomFilter::remove(const BloomIndices& indices) noexcept {
  if (packed_) {
    for (unsigned i = 0; i < indices.count; ++i) {
      const std::size_t idx = indices.idx[i];
      SYM_DCHECK_BOUNDS(idx, entries_, "sig.cbf") << "hash index out of range";
      std::uint8_t& slot = nibbles_[idx >> 1];
      const unsigned shift = (idx & 1u) * 4u;
      const std::uint8_t value = (slot >> shift) & 0x0fu;
      if (value == 0 || value == max_value_) continue;  // underflow / stuck-at-max
      slot = static_cast<std::uint8_t>(slot - (1u << shift));
      if (value == 1) {
        SYM_DCHECK(nonzero_ > 0, "sig.cbf") << "nonzero_ bookkeeping underflow";
        --nonzero_;
      }
    }
    SYM_DCHECK_LE(nonzero_, entries_, "sig.cbf");
    return;
  }
  for (unsigned i = 0; i < indices.count; ++i) {
    SYM_DCHECK_BOUNDS(indices.idx[i], entries_, "sig.cbf") << "hash index out of range";
    auto& counter = counters_[indices.idx[i]];
    if (counter == 0 || counter == max_value_) continue;  // underflow / stuck-at-max
    --counter;
    if (counter == 0) {
      SYM_DCHECK(nonzero_ > 0, "sig.cbf") << "nonzero_ bookkeeping underflow";
      --nonzero_;
    }
  }
  SYM_DCHECK_LE(nonzero_, entries_, "sig.cbf");
}

SYM_HOT bool CountingBloomFilter::maybe_contains(LineAddr line) const noexcept {
  return maybe_contains(indices_of(line));
}

SYM_HOT bool CountingBloomFilter::maybe_contains(const BloomIndices& indices) const noexcept {
  for (unsigned i = 0; i < indices.count; ++i) {
    if (counter_value(indices.idx[i]) == 0) return false;
  }
  return true;
}

void CountingBloomFilter::reset() noexcept {
  std::fill(nibbles_.begin(), nibbles_.end(), std::uint8_t{0});
  std::fill(counters_.begin(), counters_.end(), std::uint16_t{0});
  nonzero_ = 0;
}

void CountingBloomFilter::decay() noexcept {
  if (packed_) {
    const kernels::KernelOps& ops = kernels::ops();
    ops.nibble_decay(nibbles_.data(), entries_, static_cast<std::uint8_t>(max_value_));
    nonzero_ = entries_ - ops.nibble_count_eq(nibbles_.data(), entries_, 0);
    return;
  }
  for (auto& counter : counters_) {
    if (counter == 0 || counter == max_value_) continue;  // stuck-at-max, like remove()
    if (--counter == 0) --nonzero_;
  }
}

void CountingBloomFilter::merge_saturating(const CountingBloomFilter& other) {
  SYM_CHECK_EQ(entries_, other.entries_, "sig.cbf") << "CBF entry-count mismatch";
  SYM_CHECK_EQ(counter_bits_, other.counter_bits_, "sig.cbf") << "CBF counter-width mismatch";
  if (packed_) {
    const kernels::KernelOps& ops = kernels::ops();
    ops.nibble_merge_saturating(nibbles_.data(), other.nibbles_.data(), entries_,
                                static_cast<std::uint8_t>(max_value_));
    nonzero_ = entries_ - ops.nibble_count_eq(nibbles_.data(), entries_, 0);
    return;
  }
  for (std::size_t i = 0; i < entries_; ++i) {
    const std::uint32_t sum = static_cast<std::uint32_t>(counters_[i]) + other.counters_[i];
    if (counters_[i] == 0 && sum > 0) ++nonzero_;
    counters_[i] = static_cast<std::uint16_t>(std::min<std::uint32_t>(sum, max_value_));
  }
}

std::uint16_t CountingBloomFilter::counter_at(std::size_t i) const {
  if (i >= entries_) throw std::out_of_range("CountingBloomFilter::counter_at");
  return counter_value(i);
}

void CountingBloomFilter::validate() const {
  std::size_t nonzero = 0;
  for (std::size_t i = 0; i < entries_; ++i) {
    const std::uint16_t counter = counter_value(i);
    SYM_CHECK_LE(counter, max_value_, "sig.cbf") << "counter exceeds saturation value";
    if (counter != 0) ++nonzero;
  }
  SYM_CHECK_EQ(nonzero, nonzero_, "sig.cbf") << "cached nonzero count out of sync";
  if (packed_ && (entries_ & 1) != 0) {
    SYM_CHECK_EQ(nibbles_.back() >> 4, 0, "sig.cbf") << "padding nibble must stay zero";
  }
  if (packed_) {
    // The bulk kernels must agree with the per-counter recount.
    SYM_CHECK_EQ(entries_ - kernels::ops().nibble_count_eq(nibbles_.data(), entries_, 0),
                 nonzero_, "sig.cbf")
        << "nibble_count_eq disagrees with recount";
  }
}

std::size_t CountingBloomFilter::saturated_count() const noexcept {
  if (packed_) {
    return kernels::ops().nibble_count_eq(nibbles_.data(), entries_,
                                          static_cast<std::uint8_t>(max_value_));
  }
  return static_cast<std::size_t>(std::count(counters_.begin(), counters_.end(), max_value_));
}

}  // namespace symbiosis::sig
