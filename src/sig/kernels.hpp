// kernels.hpp — runtime-dispatched word-parallel signature kernels.
//
// The signature hot loops — RBV popcount (occupancy weight), XOR-popcount
// (the symbiosis metric), the RBV derivation CF ∧ ¬LF, and bulk passes
// over the CBF's packed 4-bit counters — are pure integer kernels over
// flat arrays. This layer provides one implementation per instruction set
// (scalar / AVX2 / NEON) behind a function-pointer table selected once at
// startup (util::active_simd_backend, overridable with SYMBIOSIS_SIMD).
//
// Contract: every backend computes EXACTLY the same integers — these are
// bit-counting and saturating-counter kernels with no floating point, so
// backend choice can never change simulation results, only speed. The
// differential suite (tests/test_kernels.cpp) runs every compiled backend
// against the naive references on awkward widths to keep that true.
//
// To add a backend: extend util::SimdBackend, implement the ops in
// kernels.cpp (guarded by the target's predefine), list it in
// util::available_simd_backends() detection, and the differential tests
// and bench registration pick it up automatically (see DESIGN.md §15).
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/simd.hpp"

namespace symbiosis::sig::kernels {

/// Dispatch table of the word-parallel kernels for one backend. All
/// pointers are non-null; `words`/`nibbles` counts of zero are valid.
struct KernelOps {
  util::SimdBackend backend;

  /// Number of set bits in words[0..n).
  std::size_t (*popcount)(const std::uint64_t* words, std::size_t n);
  /// popcount(a XOR b) without materialising the XOR — the symbiosis metric.
  std::size_t (*xor_popcount)(const std::uint64_t* a, const std::uint64_t* b, std::size_t n);
  /// popcount(a AND b) — footprint overlap.
  std::size_t (*and_popcount)(const std::uint64_t* a, const std::uint64_t* b, std::size_t n);
  /// dst = a AND NOT b — the RBV derivation RBV = CF ∧ ¬LF.
  void (*and_not)(std::uint64_t* dst, const std::uint64_t* a, const std::uint64_t* b,
                  std::size_t n);
  /// out[i] = popcount(a XOR bs[i]) for i in [0, count) — one batched pass
  /// evaluating an RBV against every core filter of a cluster.
  void (*xor_popcount_many)(const std::uint64_t* a, const std::uint64_t* const* bs,
                            std::size_t count, std::size_t words, std::size_t* out);

  // Bulk passes over packed 4-bit counters, two per byte (low nibble =
  // even index; an odd count leaves the final high nibble as zero padding,
  // which the mutating kernels preserve).
  /// Number of counters among the first `nibbles` equal to `value`.
  std::size_t (*nibble_count_eq)(const std::uint8_t* packed, std::size_t nibbles,
                                 std::uint8_t value);
  /// dst[i] = min(dst[i] + src[i], max_value) — saturating counter union.
  void (*nibble_merge_saturating)(std::uint8_t* dst, const std::uint8_t* src,
                                  std::size_t nibbles, std::uint8_t max_value);
  /// Age every counter: values in (0, max_value) are decremented; zero
  /// stays zero and max_value stays put (the stuck-at-max policy — a
  /// saturated counter has lost its exact count, same rule as remove()).
  void (*nibble_decay)(std::uint8_t* packed, std::size_t nibbles, std::uint8_t max_value);
};

/// Table for a specific backend — for differential tests and benches that
/// compare backends in one process. Scalar is always valid; Avx2/Neon only
/// when listed in util::available_simd_backends() (calling a table for an
/// unsupported backend is undefined — it executes unsupported instructions).
[[nodiscard]] const KernelOps& kernel_ops(util::SimdBackend backend) noexcept;

/// The process-wide active table (util::active_simd_backend()); everything
/// in sig/ routes through this.
[[nodiscard]] const KernelOps& ops() noexcept;

}  // namespace symbiosis::sig::kernels
