#include "sig/signature.hpp"

#include <stdexcept>

#include "util/check.hpp"

namespace symbiosis::sig {

void ProcessSignature::resize(std::size_t num_cores) {
  latest_sym_.assign(num_cores, 0);
  sym_sum_.assign(num_cores, 0.0);
  sym_samples_.assign(num_cores, 0);
  last_core_ = 0;
  latest_occupancy_ = 0;
  samples_ = 0;
  occ_sum_ = 0.0;
  cross_sum_ = 0.0;
  cross_n_ = 0;
}

void ProcessSignature::record(const SignatureSample& sample) {
  SYM_CHECK_EQ(sample.symbiosis.size(), sym_sum_.size(), "sig.signature")
      << "sample core count disagrees with resize()";
  last_core_ = sample.core;
  latest_occupancy_ = sample.occupancy_weight;
  latest_sym_ = sample.symbiosis;

  ++samples_;
  occ_sum_ += static_cast<double>(sample.occupancy_weight);
  for (std::size_t c = 0; c < sample.symbiosis.size(); ++c) {
    // §3.3.2 uses symbiosis with EVERY core, the process's own included
    // (the RBV-vs-own-CF comparison measures co-resident footprints from
    // earlier quanta on the same core).
    sym_sum_[c] += static_cast<double>(sample.symbiosis[c]);
    ++sym_samples_[c];
    if (c != sample.core) {
      cross_sum_ += static_cast<double>(sample.symbiosis[c]);
      ++cross_n_;
    }
  }
}

void ProcessSignature::clear_window() noexcept {
  samples_ = 0;
  occ_sum_ = 0.0;
  cross_sum_ = 0.0;
  cross_n_ = 0;
  for (auto& s : sym_sum_) s = 0.0;
  for (auto& n : sym_samples_) n = 0;
}

double ProcessSignature::mean_occupancy() const noexcept {
  return samples_ ? occ_sum_ / static_cast<double>(samples_) : 0.0;
}

double ProcessSignature::mean_symbiosis(std::size_t core) const {
  const auto n = sym_samples_.at(core);
  return n ? sym_sum_[core] / static_cast<double>(n) : 0.0;
}

double ProcessSignature::mean_cross_symbiosis() const {
  return cross_n_ ? cross_sum_ / static_cast<double>(cross_n_) : 0.0;
}

double ProcessSignature::interference_with(std::size_t core) const {
  const double sym = mean_symbiosis(core);
  // §3.3.2: interference = 1 / symbiosis. Clamp zero-symbiosis (empty
  // vectors or identical footprints) to a large finite interference.
  constexpr double kMaxInterference = 1.0;  // 1/sym with sym >= 1
  if (sym < 1.0) return kMaxInterference;
  return 1.0 / sym;
}

}  // namespace symbiosis::sig
