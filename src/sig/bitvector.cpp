#include "sig/bitvector.hpp"

#include <bit>
#include <cassert>

namespace symbiosis::sig {

namespace {
constexpr std::size_t kWordBits = 64;
}

BitVector::BitVector(std::size_t bits) : bits_(bits), words_((bits + kWordBits - 1) / kWordBits, 0) {}

void BitVector::set(std::size_t i) noexcept {
  assert(i < bits_);
  words_[i / kWordBits] |= std::uint64_t{1} << (i % kWordBits);
}

void BitVector::clear(std::size_t i) noexcept {
  assert(i < bits_);
  words_[i / kWordBits] &= ~(std::uint64_t{1} << (i % kWordBits));
}

bool BitVector::test(std::size_t i) const noexcept {
  assert(i < bits_);
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
}

void BitVector::reset() noexcept {
  for (auto& w : words_) w = 0;
}

std::size_t BitVector::popcount() const noexcept {
  std::size_t total = 0;
  for (const auto w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

std::size_t BitVector::xor_popcount(const BitVector& other) const noexcept {
  assert(bits_ == other.bits_);
  std::size_t total = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    total += static_cast<std::size_t>(std::popcount(words_[i] ^ other.words_[i]));
  }
  return total;
}

std::size_t BitVector::and_popcount(const BitVector& other) const noexcept {
  assert(bits_ == other.bits_);
  std::size_t total = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    total += static_cast<std::size_t>(std::popcount(words_[i] & other.words_[i]));
  }
  return total;
}

void BitVector::assign_and_not(const BitVector& a, const BitVector& b) noexcept {
  assert(bits_ == a.bits_ && bits_ == b.bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] = a.words_[i] & ~b.words_[i];
  }
}

void BitVector::assign(const BitVector& other) noexcept {
  assert(bits_ == other.bits_);
  words_ = other.words_;
}

BitVector& BitVector::operator|=(const BitVector& other) noexcept {
  assert(bits_ == other.bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

BitVector& BitVector::operator&=(const BitVector& other) noexcept {
  assert(bits_ == other.bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

BitVector& BitVector::operator^=(const BitVector& other) noexcept {
  assert(bits_ == other.bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
  return *this;
}

double BitVector::fill_ratio() const noexcept {
  if (bits_ == 0) return 0.0;
  return static_cast<double>(popcount()) / static_cast<double>(bits_);
}

}  // namespace symbiosis::sig
