#include "sig/bitvector.hpp"

#include "sig/kernels.hpp"
#include "util/check.hpp"

namespace symbiosis::sig {

namespace {
constexpr std::size_t kWordBits = 64;
}

BitVector::BitVector(std::size_t bits) : bits_(bits), words_((bits + kWordBits - 1) / kWordBits, 0) {}

void BitVector::set(std::size_t i) noexcept {
  SYM_DCHECK_BOUNDS(i, bits_, "sig.bitvector");
  words_[i / kWordBits] |= std::uint64_t{1} << (i % kWordBits);
}

void BitVector::clear(std::size_t i) noexcept {
  SYM_DCHECK_BOUNDS(i, bits_, "sig.bitvector");
  words_[i / kWordBits] &= ~(std::uint64_t{1} << (i % kWordBits));
}

bool BitVector::test(std::size_t i) const noexcept {
  SYM_DCHECK_BOUNDS(i, bits_, "sig.bitvector");
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
}

void BitVector::reset() noexcept {
  for (auto& w : words_) w = 0;
}

std::size_t BitVector::popcount() const noexcept {
  return kernels::ops().popcount(words_.data(), words_.size());
}

std::size_t BitVector::xor_popcount(const BitVector& other) const noexcept {
  SYM_DCHECK_EQ(bits_, other.bits_, "sig.bitvector") << "bit-vector width mismatch";
  return kernels::ops().xor_popcount(words_.data(), other.words_.data(), words_.size());
}

std::size_t BitVector::and_popcount(const BitVector& other) const noexcept {
  SYM_DCHECK_EQ(bits_, other.bits_, "sig.bitvector") << "bit-vector width mismatch";
  return kernels::ops().and_popcount(words_.data(), other.words_.data(), words_.size());
}

void BitVector::assign_and_not(const BitVector& a, const BitVector& b) noexcept {
  SYM_DCHECK_EQ(bits_, a.bits_, "sig.bitvector") << "bit-vector width mismatch";
  SYM_DCHECK_EQ(bits_, b.bits_, "sig.bitvector") << "bit-vector width mismatch";
  kernels::ops().and_not(words_.data(), a.words_.data(), b.words_.data(), words_.size());
}

void BitVector::assign(const BitVector& other) noexcept {
  SYM_DCHECK_EQ(bits_, other.bits_, "sig.bitvector") << "bit-vector width mismatch";
  words_ = other.words_;
}

BitVector& BitVector::operator|=(const BitVector& other) noexcept {
  SYM_DCHECK_EQ(bits_, other.bits_, "sig.bitvector") << "bit-vector width mismatch";
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

BitVector& BitVector::operator&=(const BitVector& other) noexcept {
  SYM_DCHECK_EQ(bits_, other.bits_, "sig.bitvector") << "bit-vector width mismatch";
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

BitVector& BitVector::operator^=(const BitVector& other) noexcept {
  SYM_DCHECK_EQ(bits_, other.bits_, "sig.bitvector") << "bit-vector width mismatch";
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
  return *this;
}

double BitVector::fill_ratio() const noexcept {
  if (bits_ == 0) return 0.0;
  return static_cast<double>(popcount()) / static_cast<double>(bits_);
}

}  // namespace symbiosis::sig
