#include "sig/bitvector.hpp"

#include <bit>

#include "util/check.hpp"

namespace symbiosis::sig {

namespace {
constexpr std::size_t kWordBits = 64;
}

BitVector::BitVector(std::size_t bits) : bits_(bits), words_((bits + kWordBits - 1) / kWordBits, 0) {}

void BitVector::set(std::size_t i) noexcept {
  SYM_DCHECK_BOUNDS(i, bits_, "sig.bitvector");
  words_[i / kWordBits] |= std::uint64_t{1} << (i % kWordBits);
}

void BitVector::clear(std::size_t i) noexcept {
  SYM_DCHECK_BOUNDS(i, bits_, "sig.bitvector");
  words_[i / kWordBits] &= ~(std::uint64_t{1} << (i % kWordBits));
}

bool BitVector::test(std::size_t i) const noexcept {
  SYM_DCHECK_BOUNDS(i, bits_, "sig.bitvector");
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
}

void BitVector::reset() noexcept {
  for (auto& w : words_) w = 0;
}

std::size_t BitVector::popcount() const noexcept {
  std::size_t total = 0;
  for (const auto w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

std::size_t BitVector::xor_popcount(const BitVector& other) const noexcept {
  SYM_DCHECK_EQ(bits_, other.bits_, "sig.bitvector") << "bit-vector width mismatch";
  std::size_t total = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    total += static_cast<std::size_t>(std::popcount(words_[i] ^ other.words_[i]));
  }
  return total;
}

std::size_t BitVector::and_popcount(const BitVector& other) const noexcept {
  SYM_DCHECK_EQ(bits_, other.bits_, "sig.bitvector") << "bit-vector width mismatch";
  std::size_t total = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    total += static_cast<std::size_t>(std::popcount(words_[i] & other.words_[i]));
  }
  return total;
}

void BitVector::assign_and_not(const BitVector& a, const BitVector& b) noexcept {
  SYM_DCHECK_EQ(bits_, a.bits_, "sig.bitvector") << "bit-vector width mismatch";
  SYM_DCHECK_EQ(bits_, b.bits_, "sig.bitvector") << "bit-vector width mismatch";
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] = a.words_[i] & ~b.words_[i];
  }
}

void BitVector::assign(const BitVector& other) noexcept {
  SYM_DCHECK_EQ(bits_, other.bits_, "sig.bitvector") << "bit-vector width mismatch";
  words_ = other.words_;
}

BitVector& BitVector::operator|=(const BitVector& other) noexcept {
  SYM_DCHECK_EQ(bits_, other.bits_, "sig.bitvector") << "bit-vector width mismatch";
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

BitVector& BitVector::operator&=(const BitVector& other) noexcept {
  SYM_DCHECK_EQ(bits_, other.bits_, "sig.bitvector") << "bit-vector width mismatch";
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

BitVector& BitVector::operator^=(const BitVector& other) noexcept {
  SYM_DCHECK_EQ(bits_, other.bits_, "sig.bitvector") << "bit-vector width mismatch";
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
  return *this;
}

double BitVector::fill_ratio() const noexcept {
  if (bits_ == 0) return 0.0;
  return static_cast<double>(popcount()) / static_cast<double>(bits_);
}

}  // namespace symbiosis::sig
