// bitvector.hpp — dense bit-vector modelling the hardware Core/Last filters.
//
// The signature hardware is specified as flat bit arrays with parallel
// bitwise logic (§5.4: "parallel bitwise XOR gates"). BitVector provides the
// word-parallel equivalents the model needs: popcount, XOR-popcount,
// AND-NOT (the RBV derivation CF ∧ ¬LF), and saturation queries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace symbiosis::sig {

/// Fixed-size dense bit vector with word-parallel set operations.
class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(std::size_t bits);

  [[nodiscard]] std::size_t size() const noexcept { return bits_; }

  void set(std::size_t i) noexcept;
  void clear(std::size_t i) noexcept;
  [[nodiscard]] bool test(std::size_t i) const noexcept;

  /// Set all bits to zero.
  void reset() noexcept;

  /// Number of set bits ("occupancy weight" when this is an RBV).
  [[nodiscard]] std::size_t popcount() const noexcept;

  /// popcount(*this XOR other) without materialising the XOR — this is the
  /// paper's symbiosis metric between an RBV and a core filter.
  [[nodiscard]] std::size_t xor_popcount(const BitVector& other) const noexcept;

  /// popcount(*this AND other) — overlap, used by tests and diagnostics.
  [[nodiscard]] std::size_t and_popcount(const BitVector& other) const noexcept;

  /// *this = a AND NOT b. This is the RBV derivation: RBV = CF ∧ ¬LF
  /// (equivalently ¬(CF → LF)). Sizes must match.
  void assign_and_not(const BitVector& a, const BitVector& b) noexcept;

  /// Copy assignment of contents (sizes must match); models the LF snapshot.
  void assign(const BitVector& other) noexcept;

  /// In-place OR / AND / XOR (sizes must match).
  BitVector& operator|=(const BitVector& other) noexcept;
  BitVector& operator&=(const BitVector& other) noexcept;
  BitVector& operator^=(const BitVector& other) noexcept;

  [[nodiscard]] bool operator==(const BitVector& other) const noexcept = default;

  /// Fraction of bits set, in [0, 1]; a value near 1 means the filter is
  /// saturated and carries little information (the presence-bits failure
  /// mode of §5.3).
  [[nodiscard]] double fill_ratio() const noexcept;

  /// Raw words for serialization / tests.
  [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept { return words_; }

 private:
  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace symbiosis::sig
