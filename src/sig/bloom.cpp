#include "sig/bloom.hpp"

#include <cmath>
#include <stdexcept>

namespace symbiosis::sig {

BloomFilter::BloomFilter(std::size_t entries, unsigned k, HashKind kind)
    : hash_(kind, entries), k_(k), bits_(entries) {
  if (k == 0) throw std::invalid_argument("BloomFilter: k must be >= 1");
}

void BloomFilter::insert(LineAddr line) noexcept {
  for (unsigned i = 0; i < k_; ++i) bits_.set(hash_.index_k(line, i));
}

bool BloomFilter::maybe_contains(LineAddr line) const noexcept {
  for (unsigned i = 0; i < k_; ++i) {
    if (!bits_.test(hash_.index_k(line, i))) return false;
  }
  return true;
}

double BloomFilter::theoretical_fpp(std::size_t inserted) const noexcept {
  const double m = static_cast<double>(entries());
  const double n = static_cast<double>(inserted);
  const double k = static_cast<double>(k_);
  return std::pow(1.0 - std::exp(-k * n / m), k);
}

}  // namespace symbiosis::sig
