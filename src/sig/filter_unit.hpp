// filter_unit.hpp — the paper's split counting-Bloom-filter signature unit.
//
// §3.1: the classic CBF is split into ONE shared counter array (complete
// information about the L2's contents) plus one bit-vector per core, the
// Core Filter (CF), tracking which filter indices were touched by fills
// originating from that core. A second per-core bit-vector, the Last
// Filter (LF), snapshots the CF at context-switch-in; at switch-out the
// Running Bit Vector
//
//     RBV = ¬(CF → LF) = CF ∧ ¬LF
//
// is the outgoing process's cache-footprint signature. From the RBV:
//   * occupancy weight          = popcount(RBV)
//   * symbiosis with core c     = popcount(RBV XOR CF[c])
// High symbiosis = disjoint footprints = low interference.
//
// The unit is driven by the L2 via two events:
//   * on_fill(line, core, set, way)  — an L2 miss fill for @p core
//   * on_evict(line, set, way)      — a line replaced out of the L2
// and supports §5.4 set-sampling (track only every 2^s-th cache set) and
// the §5.3 "presence bits" variant (a positional 1:1 bit per cache line,
// no hash, no counters).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sig/bitvector.hpp"
#include "sig/hash.hpp"

namespace symbiosis::sig {

/// Static configuration of the signature hardware.
struct FilterUnitConfig {
  std::size_t num_cores = 2;
  std::size_t cache_sets = 1024;   ///< L2 sets (power of two)
  std::size_t cache_ways = 16;     ///< L2 associativity
  unsigned counter_bits = 3;       ///< L, per §5.4
  unsigned hash_functions = 1;     ///< k; the paper argues k = 1
  HashKind hash = HashKind::Xor;
  /// Set-sampling shift s: only sets with (set & (2^s - 1)) == 0 are
  /// tracked. 0 = unsampled; 2 = the paper's 25% sampling.
  unsigned sample_shift = 0;

  /// Filter entries = sampled lines = (sets >> sample_shift) * ways.
  [[nodiscard]] std::size_t entries() const noexcept {
    return (cache_sets >> sample_shift) * cache_ways;
  }
  /// Total cache lines covered by the L2.
  [[nodiscard]] std::size_t cache_lines() const noexcept { return cache_sets * cache_ways; }
  /// True when @p set falls inside the sample.
  [[nodiscard]] bool sampled(std::size_t set) const noexcept {
    return (set & ((std::size_t{1} << sample_shift) - 1)) == 0;
  }
};

/// The split-CBF signature unit attached to a shared L2.
class FilterUnit {
 public:
  explicit FilterUnit(FilterUnitConfig config);

  [[nodiscard]] const FilterUnitConfig& config() const noexcept { return config_; }

  /// L2 fill event: increment the shared counter and set the CF bit of the
  /// requesting core. (set, way) locate the filled line for presence mode.
  void on_fill(LineAddr line, std::size_t core, std::size_t set, std::size_t way) noexcept;

  /// L2 replacement event: decrement the shared counter; when it reaches
  /// zero, the corresponding bit is cleared in EVERY core filter (§3.1's
  /// acknowledged source of slight inaccuracy).
  void on_evict(LineAddr line, std::size_t set, std::size_t way) noexcept;

  /// Context-switch-in hook: LF[core] = CF[core]. Must be called before the
  /// incoming process issues its first access.
  void snapshot(std::size_t core) noexcept;

  /// Context-switch-out hook: derive the outgoing process's RBV.
  [[nodiscard]] BitVector compute_rbv(std::size_t core) const;

  /// popcount(rbv XOR CF[other_core]) — the symbiosis metric.
  [[nodiscard]] std::size_t symbiosis(const BitVector& rbv, std::size_t other_core) const noexcept;

  /// Symbiosis of an outgoing process with its OWN core: popcount(rbv XOR
  /// LF[core]). The CF at switch-out trivially contains every RBV bit (the
  /// process set them), so XOR against the CF would measure nothing but the
  /// process's own footprint; the Last Filter — the snapshot taken just
  /// before the process ran — is the co-residents' footprint, which is the
  /// quantity the §3.3.2 interference edges need. (The paper is silent on
  /// the self-core case; see DESIGN.md.)
  [[nodiscard]] std::size_t self_symbiosis(const BitVector& rbv, std::size_t core) const noexcept;

  /// Batched per-core symbiosis: one call per scheduling decision instead
  /// of num_cores() separate ones. @p out (length num_cores()) receives
  /// self_symbiosis(rbv, c) at c == @p self_core (the LF comparison — the
  /// co-residents' footprint) and symbiosis(rbv, c) everywhere else. The
  /// filter word pointers are gathered once and handed to the kernel
  /// layer's xor_popcount_many (sig/kernels.hpp).
  void symbiosis_all(const BitVector& rbv, std::size_t self_core,
                     std::size_t* out) const noexcept;
  /// Vector-returning convenience form (tests / diagnostics).
  [[nodiscard]] std::vector<std::size_t> symbiosis_all(const BitVector& rbv,
                                                       std::size_t self_core) const;

  /// Occupancy weight of a core's CURRENT core filter (used by the Fig 2/5
  /// footprint-tracking experiment, which monitors CF ones over time).
  [[nodiscard]] std::size_t core_filter_weight(std::size_t core) const noexcept;

  /// Number of cores this unit monitors (cluster-LOCAL on clustered
  /// machines, where each shared L2 carries its own FilterUnit).
  [[nodiscard]] std::size_t num_cores() const noexcept { return config_.num_cores; }

  /// Clear all counters and filters (e.g. between experiment repetitions).
  void reset() noexcept;

  // --- inspection (tests / diagnostics) ---
  [[nodiscard]] const BitVector& core_filter(std::size_t core) const { return cf_.at(core); }
  [[nodiscard]] const BitVector& last_filter(std::size_t core) const { return lf_.at(core); }
  [[nodiscard]] std::uint16_t counter_at(std::size_t i) const { return counters_.at(i); }
  [[nodiscard]] std::size_t entries() const noexcept { return counters_.size(); }
  [[nodiscard]] std::size_t saturated_counters() const noexcept;
  /// Fraction of CF bits set, per core — the presence-bits saturation metric.
  [[nodiscard]] double core_filter_fill(std::size_t core) const { return cf_.at(core).fill_ratio(); }

  /// Full O(cores * entries) consistency audit via SYM_CHECK: every set CF
  /// bit is backed by a live shared counter (on_evict clears CF bits when a
  /// counter drains), all widths agree, and no counter exceeds saturation.
  /// LF bits are exempt — snapshots legitimately go stale (§3.1).
  void validate() const;

  /// Hard ceiling on hash_functions (the paper uses 1; >1 exists only for
  /// the Fig 14 saturation ablation).
  static constexpr unsigned kMaxHashFunctions = 8;

 private:
  /// Map an event to its distinct filter indices (none when the event falls
  /// outside the sampled sets); returns the index count (<= hash_functions).
  [[nodiscard]] unsigned indices_of(LineAddr line, std::size_t set, std::size_t way,
                                    std::size_t* out) const noexcept;

  /// Single distinct index per event: presence mode (positional) or k = 1
  /// (the paper's configuration). Lets the hot event handlers skip the
  /// index-array + dedup pass entirely.
  [[nodiscard]] std::size_t single_index_of(LineAddr line, std::size_t set,
                                            std::size_t way) const noexcept {
    return presence_mode_ ? (set >> config_.sample_shift) * config_.cache_ways + way
                          : hash_->index(line);
  }

  FilterUnitConfig config_;
  std::optional<IndexHash> hash_;        // engaged unless in presence mode
  bool presence_mode_;
  bool single_index_;                    // presence mode or hash_functions == 1
  std::uint16_t counter_max_;
  std::vector<std::uint16_t> counters_;  // shared counter array
  std::vector<BitVector> cf_;            // per-core Core Filters
  std::vector<BitVector> lf_;            // per-core Last Filters
};

/// Symbiosis of an RBV against a core monitored by a DIFFERENT FilterUnit
/// (another L2 cluster). The two filters index disjoint caches, so the
/// footprints cannot overlap by construction and popcount(RBV XOR CF)
/// reduces to popcount(RBV) + popcount(CF) — maximal symbiosis, which is
/// exactly right: processes in different clusters do not contend for cache
/// space at all. @p other_weight is the other unit's core_filter_weight().
[[nodiscard]] inline std::size_t disjoint_symbiosis(const BitVector& rbv,
                                                    std::size_t other_weight) noexcept {
  return rbv.popcount() + other_weight;
}

/// disjoint_symbiosis() for a caller that already holds popcount(RBV) —
/// e.g. as the signature sample's occupancy weight — so a loop over N
/// remote cores pays for the RBV popcount once, not N times.
[[nodiscard]] inline std::size_t disjoint_symbiosis_from_weights(
    std::size_t rbv_weight, std::size_t other_weight) noexcept {
  return rbv_weight + other_weight;
}

}  // namespace symbiosis::sig
