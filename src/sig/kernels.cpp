// kernels.cpp — scalar / AVX2 / NEON implementations of the signature
// kernels. The AVX2 bodies carry __attribute__((target("avx2"))) so the
// translation unit builds without -mavx2 and the default build stays free
// of ISA flags; they are only ever reached through a table whose backend
// util::available_simd_backends() confirmed at startup.
#include "sig/kernels.hpp"

#include <atomic>

#include "util/hotpath.hpp"

#include <algorithm>
#include <bit>

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define SYMBIOSIS_KERNELS_AVX2 1
#define SYMBIOSIS_TARGET_AVX2 __attribute__((target("avx2")))
#endif

#if defined(__aarch64__)
#include <arm_neon.h>
#define SYMBIOSIS_KERNELS_NEON 1
#endif

namespace symbiosis::sig::kernels {
namespace {

// ---------------------------------------------------------------- scalar

SYM_HOT std::size_t popcount_scalar(const std::uint64_t* words, std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) total += static_cast<std::size_t>(std::popcount(words[i]));
  return total;
}

SYM_HOT std::size_t xor_popcount_scalar(const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
  }
  return total;
}

SYM_HOT std::size_t and_popcount_scalar(const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<std::size_t>(std::popcount(a[i] & b[i]));
  }
  return total;
}

SYM_HOT void and_not_scalar(std::uint64_t* dst, const std::uint64_t* a, const std::uint64_t* b,
                    std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] & ~b[i];
}

SYM_HOT void xor_popcount_many_scalar(const std::uint64_t* a, const std::uint64_t* const* bs,
                              std::size_t count, std::size_t words, std::size_t* out) {
  for (std::size_t c = 0; c < count; ++c) out[c] = xor_popcount_scalar(a, bs[c], words);
}

SYM_HOT std::size_t nibble_count_eq_scalar(const std::uint8_t* packed, std::size_t nibbles,
                                   std::uint8_t value) {
  std::size_t total = 0;
  const std::size_t full = nibbles / 2;
  for (std::size_t i = 0; i < full; ++i) {
    const std::uint8_t byte = packed[i];
    total += static_cast<std::size_t>((byte & 0x0f) == value);
    total += static_cast<std::size_t>((byte >> 4) == value);
  }
  if ((nibbles & 1) != 0) total += static_cast<std::size_t>((packed[full] & 0x0f) == value);
  return total;
}

SYM_HOT void nibble_merge_saturating_scalar(std::uint8_t* dst, const std::uint8_t* src,
                                    std::size_t nibbles, std::uint8_t max_value) {
  // The padding nibble of an odd count is zero in both operands, so whole
  // bytes can be processed uniformly (0 + 0 saturates to 0).
  const std::size_t bytes = (nibbles + 1) / 2;
  for (std::size_t i = 0; i < bytes; ++i) {
    const std::uint8_t lo =
        std::min<std::uint8_t>(static_cast<std::uint8_t>((dst[i] & 0x0f) + (src[i] & 0x0f)),
                               max_value);
    const std::uint8_t hi =
        std::min<std::uint8_t>(static_cast<std::uint8_t>((dst[i] >> 4) + (src[i] >> 4)),
                               max_value);
    dst[i] = static_cast<std::uint8_t>(lo | (hi << 4));
  }
}

SYM_HOT void nibble_decay_scalar(std::uint8_t* packed, std::size_t nibbles, std::uint8_t max_value) {
  const std::size_t bytes = (nibbles + 1) / 2;
  for (std::size_t i = 0; i < bytes; ++i) {
    std::uint8_t lo = packed[i] & 0x0f;
    std::uint8_t hi = packed[i] >> 4;
    if (lo != 0 && lo != max_value) --lo;  // stuck-at-max, like remove()
    if (hi != 0 && hi != max_value) --hi;
    packed[i] = static_cast<std::uint8_t>(lo | (hi << 4));
  }
}

constexpr KernelOps kScalarOps{
    util::SimdBackend::Scalar, popcount_scalar,        xor_popcount_scalar,
    and_popcount_scalar,       and_not_scalar,         xor_popcount_many_scalar,
    nibble_count_eq_scalar,    nibble_merge_saturating_scalar,
    nibble_decay_scalar,
};

// ----------------------------------------------------------------- AVX2

#if defined(SYMBIOSIS_KERNELS_AVX2)

/// Per-byte popcount of a 256-bit block via the vpshufb nibble LUT (Mula),
/// horizontally folded into four 64-bit lanes with vpsadbw.
SYMBIOSIS_TARGET_AVX2 inline __m256i block_popcount_avx2(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,  //
                                       0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i counts =
      _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

SYMBIOSIS_TARGET_AVX2 inline std::uint64_t hsum_epi64_avx2(__m256i v) {
  const __m128i sum =
      _mm_add_epi64(_mm256_castsi256_si128(v), _mm256_extracti128_si256(v, 1));
  return static_cast<std::uint64_t>(_mm_extract_epi64(sum, 0)) +
         static_cast<std::uint64_t>(_mm_extract_epi64(sum, 1));
}

SYMBIOSIS_TARGET_AVX2 inline __m256i load_words_avx2(const std::uint64_t* words) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words));
}

SYM_HOT SYMBIOSIS_TARGET_AVX2 std::size_t popcount_avx2(const std::uint64_t* words, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_epi64(acc, block_popcount_avx2(load_words_avx2(words + i)));
  }
  std::size_t total = hsum_epi64_avx2(acc);
  for (; i < n; ++i) total += static_cast<std::size_t>(std::popcount(words[i]));
  return total;
}

SYM_HOT SYMBIOSIS_TARGET_AVX2 std::size_t xor_popcount_avx2(const std::uint64_t* a,
                                                    const std::uint64_t* b, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_xor_si256(load_words_avx2(a + i), load_words_avx2(b + i));
    acc = _mm256_add_epi64(acc, block_popcount_avx2(v));
  }
  std::size_t total = hsum_epi64_avx2(acc);
  for (; i < n; ++i) total += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
  return total;
}

SYM_HOT SYMBIOSIS_TARGET_AVX2 std::size_t and_popcount_avx2(const std::uint64_t* a,
                                                    const std::uint64_t* b, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_and_si256(load_words_avx2(a + i), load_words_avx2(b + i));
    acc = _mm256_add_epi64(acc, block_popcount_avx2(v));
  }
  std::size_t total = hsum_epi64_avx2(acc);
  for (; i < n; ++i) total += static_cast<std::size_t>(std::popcount(a[i] & b[i]));
  return total;
}

SYM_HOT SYMBIOSIS_TARGET_AVX2 void and_not_avx2(std::uint64_t* dst, const std::uint64_t* a,
                                        const std::uint64_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // vpandn computes ¬x ∧ y, so b goes first.
    const __m256i v = _mm256_andnot_si256(load_words_avx2(b + i), load_words_avx2(a + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), v);
  }
  for (; i < n; ++i) dst[i] = a[i] & ~b[i];
}

SYM_HOT SYMBIOSIS_TARGET_AVX2 void xor_popcount_many_avx2(const std::uint64_t* a,
                                                  const std::uint64_t* const* bs,
                                                  std::size_t count, std::size_t words,
                                                  std::size_t* out) {
  for (std::size_t c = 0; c < count; ++c) out[c] = xor_popcount_avx2(a, bs[c], words);
}

SYM_HOT SYMBIOSIS_TARGET_AVX2 std::size_t nibble_count_eq_avx2(const std::uint8_t* packed,
                                                       std::size_t nibbles, std::uint8_t value) {
  const std::size_t full = nibbles / 2;
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i needle = _mm256_set1_epi8(static_cast<char>(value));
  std::size_t total = 0;
  std::size_t i = 0;
  for (; i + 32 <= full; i += 32) {
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(packed + i));
    const __m256i lo = _mm256_and_si256(v, low_mask);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
    const auto lo_mask = static_cast<std::uint32_t>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(lo, needle)));
    const auto hi_mask = static_cast<std::uint32_t>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(hi, needle)));
    total += static_cast<std::size_t>(std::popcount(lo_mask)) +
             static_cast<std::size_t>(std::popcount(hi_mask));
  }
  for (; i < full; ++i) {
    total += static_cast<std::size_t>((packed[i] & 0x0f) == value);
    total += static_cast<std::size_t>((packed[i] >> 4) == value);
  }
  if ((nibbles & 1) != 0) total += static_cast<std::size_t>((packed[full] & 0x0f) == value);
  return total;
}

SYM_HOT SYMBIOSIS_TARGET_AVX2 void nibble_merge_saturating_avx2(std::uint8_t* dst,
                                                        const std::uint8_t* src,
                                                        std::size_t nibbles,
                                                        std::uint8_t max_value) {
  const std::size_t bytes = (nibbles + 1) / 2;
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i vmax = _mm256_set1_epi8(static_cast<char>(max_value));
  std::size_t i = 0;
  for (; i + 32 <= bytes; i += 32) {
    const __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i s = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i lo =
        _mm256_min_epu8(_mm256_add_epi8(_mm256_and_si256(d, low_mask),
                                        _mm256_and_si256(s, low_mask)),
                        vmax);
    const __m256i hi = _mm256_min_epu8(
        _mm256_add_epi8(_mm256_and_si256(_mm256_srli_epi16(d, 4), low_mask),
                        _mm256_and_si256(_mm256_srli_epi16(s, 4), low_mask)),
        vmax);
    // hi bytes are <= 15, so the 16-bit-lane shift cannot bleed across bytes.
    const __m256i merged = _mm256_or_si256(lo, _mm256_slli_epi16(hi, 4));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), merged);
  }
  if (i < bytes) {
    nibble_merge_saturating_scalar(dst + i, src + i, (bytes - i) * 2, max_value);
  }
}

SYM_HOT SYMBIOSIS_TARGET_AVX2 void nibble_decay_avx2(std::uint8_t* packed, std::size_t nibbles,
                                             std::uint8_t max_value) {
  const std::size_t bytes = (nibbles + 1) / 2;
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i vmax = _mm256_set1_epi8(static_cast<char>(max_value));
  const __m256i zero = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 32 <= bytes; i += 32) {
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(packed + i));
    const __m256i lo = _mm256_and_si256(v, low_mask);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
    // 0xff where the counter is in (0, max): decrement by adding the mask.
    const __m256i lo_dec = _mm256_andnot_si256(_mm256_cmpeq_epi8(lo, vmax),
                                               _mm256_cmpgt_epi8(lo, zero));
    const __m256i hi_dec = _mm256_andnot_si256(_mm256_cmpeq_epi8(hi, vmax),
                                               _mm256_cmpgt_epi8(hi, zero));
    const __m256i lo_new = _mm256_add_epi8(lo, lo_dec);
    const __m256i hi_new = _mm256_add_epi8(hi, hi_dec);
    const __m256i merged = _mm256_or_si256(lo_new, _mm256_slli_epi16(hi_new, 4));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(packed + i), merged);
  }
  if (i < bytes) nibble_decay_scalar(packed + i, (bytes - i) * 2, max_value);
}

constexpr KernelOps kAvx2Ops{
    util::SimdBackend::Avx2, popcount_avx2,        xor_popcount_avx2,
    and_popcount_avx2,       and_not_avx2,         xor_popcount_many_avx2,
    nibble_count_eq_avx2,    nibble_merge_saturating_avx2,
    nibble_decay_avx2,
};

#endif  // SYMBIOSIS_KERNELS_AVX2

// ----------------------------------------------------------------- NEON

#if defined(SYMBIOSIS_KERNELS_NEON)

SYM_HOT std::size_t popcount_neon(const std::uint64_t* words, std::size_t n) {
  std::size_t total = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint8x16_t v = vreinterpretq_u8_u64(vld1q_u64(words + i));
    total += vaddvq_u8(vcntq_u8(v));
  }
  for (; i < n; ++i) total += static_cast<std::size_t>(std::popcount(words[i]));
  return total;
}

SYM_HOT std::size_t xor_popcount_neon(const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  std::size_t total = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t v = veorq_u64(vld1q_u64(a + i), vld1q_u64(b + i));
    total += vaddvq_u8(vcntq_u8(vreinterpretq_u8_u64(v)));
  }
  for (; i < n; ++i) total += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
  return total;
}

SYM_HOT std::size_t and_popcount_neon(const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  std::size_t total = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t v = vandq_u64(vld1q_u64(a + i), vld1q_u64(b + i));
    total += vaddvq_u8(vcntq_u8(vreinterpretq_u8_u64(v)));
  }
  for (; i < n; ++i) total += static_cast<std::size_t>(std::popcount(a[i] & b[i]));
  return total;
}

SYM_HOT void and_not_neon(std::uint64_t* dst, const std::uint64_t* a, const std::uint64_t* b,
                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vbicq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
  }
  for (; i < n; ++i) dst[i] = a[i] & ~b[i];
}

SYM_HOT void xor_popcount_many_neon(const std::uint64_t* a, const std::uint64_t* const* bs,
                            std::size_t count, std::size_t words, std::size_t* out) {
  for (std::size_t c = 0; c < count; ++c) out[c] = xor_popcount_neon(a, bs[c], words);
}

SYM_HOT std::size_t nibble_count_eq_neon(const std::uint8_t* packed, std::size_t nibbles,
                                 std::uint8_t value) {
  const std::size_t full = nibbles / 2;
  const uint8x16_t low_mask = vdupq_n_u8(0x0f);
  const uint8x16_t needle = vdupq_n_u8(value);
  const uint8x16_t one = vdupq_n_u8(1);
  std::size_t total = 0;
  std::size_t i = 0;
  for (; i + 16 <= full; i += 16) {
    const uint8x16_t v = vld1q_u8(packed + i);
    const uint8x16_t lo = vandq_u8(v, low_mask);
    const uint8x16_t hi = vshrq_n_u8(v, 4);
    total += vaddvq_u8(vandq_u8(vceqq_u8(lo, needle), one));
    total += vaddvq_u8(vandq_u8(vceqq_u8(hi, needle), one));
  }
  for (; i < full; ++i) {
    total += static_cast<std::size_t>((packed[i] & 0x0f) == value);
    total += static_cast<std::size_t>((packed[i] >> 4) == value);
  }
  if ((nibbles & 1) != 0) total += static_cast<std::size_t>((packed[full] & 0x0f) == value);
  return total;
}

SYM_HOT void nibble_merge_saturating_neon(std::uint8_t* dst, const std::uint8_t* src,
                                  std::size_t nibbles, std::uint8_t max_value) {
  const std::size_t bytes = (nibbles + 1) / 2;
  const uint8x16_t low_mask = vdupq_n_u8(0x0f);
  const uint8x16_t vmax = vdupq_n_u8(max_value);
  std::size_t i = 0;
  for (; i + 16 <= bytes; i += 16) {
    const uint8x16_t d = vld1q_u8(dst + i);
    const uint8x16_t s = vld1q_u8(src + i);
    const uint8x16_t lo =
        vminq_u8(vaddq_u8(vandq_u8(d, low_mask), vandq_u8(s, low_mask)), vmax);
    const uint8x16_t hi = vminq_u8(vaddq_u8(vshrq_n_u8(d, 4), vshrq_n_u8(s, 4)), vmax);
    vst1q_u8(dst + i, vorrq_u8(lo, vshlq_n_u8(hi, 4)));
  }
  if (i < bytes) {
    nibble_merge_saturating_scalar(dst + i, src + i, (bytes - i) * 2, max_value);
  }
}

SYM_HOT void nibble_decay_neon(std::uint8_t* packed, std::size_t nibbles, std::uint8_t max_value) {
  const std::size_t bytes = (nibbles + 1) / 2;
  const uint8x16_t low_mask = vdupq_n_u8(0x0f);
  const uint8x16_t vmax = vdupq_n_u8(max_value);
  const uint8x16_t zero = vdupq_n_u8(0);
  const uint8x16_t one = vdupq_n_u8(1);
  std::size_t i = 0;
  for (; i + 16 <= bytes; i += 16) {
    const uint8x16_t v = vld1q_u8(packed + i);
    const uint8x16_t lo = vandq_u8(v, low_mask);
    const uint8x16_t hi = vshrq_n_u8(v, 4);
    const uint8x16_t lo_dec =
        vandq_u8(vbicq_u8(vcgtq_u8(lo, zero), vceqq_u8(lo, vmax)), one);
    const uint8x16_t hi_dec =
        vandq_u8(vbicq_u8(vcgtq_u8(hi, zero), vceqq_u8(hi, vmax)), one);
    const uint8x16_t merged =
        vorrq_u8(vsubq_u8(lo, lo_dec), vshlq_n_u8(vsubq_u8(hi, hi_dec), 4));
    vst1q_u8(packed + i, merged);
  }
  if (i < bytes) nibble_decay_scalar(packed + i, (bytes - i) * 2, max_value);
}

constexpr KernelOps kNeonOps{
    util::SimdBackend::Neon, popcount_neon,        xor_popcount_neon,
    and_popcount_neon,       and_not_neon,         xor_popcount_many_neon,
    nibble_count_eq_neon,    nibble_merge_saturating_neon,
    nibble_decay_neon,
};

#endif  // SYMBIOSIS_KERNELS_NEON

}  // namespace

const KernelOps& kernel_ops(util::SimdBackend backend) noexcept {
  switch (backend) {
#if defined(SYMBIOSIS_KERNELS_AVX2)
    case util::SimdBackend::Avx2:
      return kAvx2Ops;
#endif
#if defined(SYMBIOSIS_KERNELS_NEON)
    case util::SimdBackend::Neon:
      return kNeonOps;
#endif
    default:
      return kScalarOps;
  }
}

namespace {
// Bound-once dispatch table pointer. A function-local static would guard
// its initialization with __cxa_guard_acquire -- a lock on every signature
// kernel call path -- so the binding is a lock-free atomic instead: the
// hot read is one acquire load, and the cold first-call binding is
// idempotent (active_simd_backend() is deterministic for a process), so a
// racing double-bind stores the same pointer twice.
std::atomic<const KernelOps*> g_active_ops{nullptr};

SYM_COLD const KernelOps& bind_ops() noexcept {
  // util::active_simd_backend() honours SYMBIOSIS_SIMD (env read + log --
  // cold by design).
  const KernelOps& bound = kernel_ops(util::active_simd_backend());
  g_active_ops.store(&bound, std::memory_order_release);
  return bound;
}
}  // namespace

SYM_HOT const KernelOps& ops() noexcept {
  const KernelOps* active = g_active_ops.load(std::memory_order_acquire);
  return active != nullptr ? *active : bind_ops();
}

}  // namespace symbiosis::sig::kernels
