#include "sig/hash.hpp"

#include <stdexcept>

#include "util/bitops.hpp"

namespace symbiosis::sig {

using util::bits;
using util::floor_log2;
using util::is_pow2;
using util::low_mask;
using util::reverse_bits;

std::string to_string(HashKind kind) {
  switch (kind) {
    case HashKind::Xor: return "xor";
    case HashKind::XorInverseReverse: return "xor-inv-rev";
    case HashKind::Modulo: return "modulo";
    case HashKind::Presence: return "presence";
    case HashKind::Multiply: return "multiply";
  }
  return "?";
}

HashKind parse_hash_kind(const std::string& name) {
  if (name == "xor") return HashKind::Xor;
  if (name == "xor-inv-rev") return HashKind::XorInverseReverse;
  if (name == "modulo") return HashKind::Modulo;
  if (name == "presence") return HashKind::Presence;
  if (name == "multiply") return HashKind::Multiply;
  throw std::invalid_argument("unknown hash kind: " + name);
}

IndexHash::IndexHash(HashKind kind, std::size_t entries)
    : kind_(kind), entries_(entries), index_bits_(floor_log2(entries | 1)) {
  if (entries == 0) throw std::invalid_argument("IndexHash: entries must be > 0");
  const bool needs_pow2 = kind == HashKind::Xor || kind == HashKind::XorInverseReverse ||
                          kind == HashKind::Multiply;
  if (needs_pow2 && !is_pow2(entries)) {
    throw std::invalid_argument("IndexHash: " + to_string(kind) +
                                " requires a power-of-two entry count");
  }
  if (kind == HashKind::Presence) {
    throw std::invalid_argument(
        "IndexHash: presence bits are positional (set/way), not an address hash; "
        "configure the filter unit with HashKind::Presence instead");
  }
}

std::size_t IndexHash::index(LineAddr line) const noexcept {
  switch (kind_) {
    case HashKind::Xor: {
      // Fold the line address into index_bits_-wide chunks and XOR them.
      std::uint64_t acc = 0;
      for (unsigned lo = 0; lo < 64; lo += index_bits_) {
        acc ^= bits(line, lo, index_bits_);
      }
      return static_cast<std::size_t>(acc & low_mask(index_bits_));
    }
    case HashKind::XorInverseReverse: {
      std::uint64_t acc = 0;
      for (unsigned lo = 0; lo < 64; lo += index_bits_) {
        acc ^= bits(line, lo, index_bits_);
      }
      acc = ~acc & low_mask(index_bits_);
      return static_cast<std::size_t>(reverse_bits(acc, index_bits_));
    }
    case HashKind::Modulo:
      return static_cast<std::size_t>(line % entries_);
    case HashKind::Multiply: {
      const std::uint64_t mixed = line * 0x9e3779b97f4a7c15ull;
      return static_cast<std::size_t>(mixed >> (64 - index_bits_));
    }
    case HashKind::Presence:
      return 0;  // unreachable: rejected in the constructor
  }
  return 0;
}

std::size_t IndexHash::index_k(LineAddr line, unsigned k) const noexcept {
  if (k == 0) return index(line);
  // Pre-mix with a per-function odd constant so the k functions differ; the
  // mixing is cheap XOR/shift only, keeping the hardware-cost argument valid.
  const std::uint64_t salt = 0x9e3779b97f4a7c15ull * (2ull * k + 1ull);
  const LineAddr mixed = line ^ (salt >> 13) ^ (line << (k % 7 + 1));
  return index(mixed);
}

}  // namespace symbiosis::sig
