#include "sig/hash.hpp"

#include <stdexcept>

namespace symbiosis::sig {

using util::floor_log2;
using util::is_pow2;

std::string to_string(HashKind kind) {
  switch (kind) {
    case HashKind::Xor: return "xor";
    case HashKind::XorInverseReverse: return "xor-inv-rev";
    case HashKind::Modulo: return "modulo";
    case HashKind::Presence: return "presence";
    case HashKind::Multiply: return "multiply";
  }
  return "?";
}

HashKind parse_hash_kind(const std::string& name) {
  if (name == "xor") return HashKind::Xor;
  if (name == "xor-inv-rev") return HashKind::XorInverseReverse;
  if (name == "modulo") return HashKind::Modulo;
  if (name == "presence") return HashKind::Presence;
  if (name == "multiply") return HashKind::Multiply;
  throw std::invalid_argument("unknown hash kind: " + name);
}

IndexHash::IndexHash(HashKind kind, std::size_t entries)
    : kind_(kind), entries_(entries), index_bits_(floor_log2(entries | 1)) {
  if (entries == 0) throw std::invalid_argument("IndexHash: entries must be > 0");
  const bool needs_pow2 = kind == HashKind::Xor || kind == HashKind::XorInverseReverse ||
                          kind == HashKind::Multiply;
  if (needs_pow2 && !is_pow2(entries)) {
    throw std::invalid_argument("IndexHash: " + to_string(kind) +
                                " requires a power-of-two entry count");
  }
  if (kind == HashKind::Presence) {
    throw std::invalid_argument(
        "IndexHash: presence bits are positional (set/way), not an address hash; "
        "configure the filter unit with HashKind::Presence instead");
  }
}

}  // namespace symbiosis::sig
