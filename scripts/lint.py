#!/usr/bin/env python3
"""lint.py -- repo-specific lint rules clang-tidy cannot express.

Usage: scripts/lint.py [paths...]        (default: src/)

Rules (see README "Correctness tooling"):
  no-raw-assert        assert() is banned in committed C++: it vanishes under
                       NDEBUG and bypasses the SYM_CHECK violation registry.
                       Use SYM_CHECK / SYM_DCHECK from util/check.hpp.
  no-rand              rand()/srand() are banned: experiments must be
                       reproducible through util::Rng's seeded streams.
  no-using-namespace-in-header
                       `using namespace` in a header pollutes every includer.
  pragma-once          every header must open with #pragma once (include
                       guards are not used in this repo).

Exit status: 0 when clean, 1 when any rule fires.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

CPP_SUFFIXES = {".cpp", ".hpp", ".h", ".cc", ".hh"}
HEADER_SUFFIXES = {".hpp", ".h", ".hh"}

RAW_ASSERT = re.compile(r"(?<![\w.])assert\s*\(")
STATIC_ASSERT = re.compile(r"static_assert\s*\(")
RAW_RAND = re.compile(r"(?<![\w:.])s?rand\s*\(")
USING_NAMESPACE = re.compile(r"^\s*using\s+namespace\b")
LINE_COMMENT = re.compile(r"//.*$")


def strip_strings_and_comments(line: str) -> str:
    """Remove string/char literal contents and // comments (crude but
    sufficient: no rule needs to look inside literals)."""
    out = []
    quote = None
    i = 0
    while i < len(line):
        ch = line[i]
        if quote:
            if ch == "\\":
                i += 2
                continue
            if ch == quote:
                quote = None
                out.append(ch)
            i += 1
            continue
        if ch in "\"'":
            quote = ch
            out.append(ch)
            i += 1
            continue
        if line.startswith("//", i):
            break
        out.append(ch)
        i += 1
    return "".join(out)


def check_file(path: Path) -> list[str]:
    problems: list[str] = []
    try:
        text = path.read_text(encoding="utf-8")
    except UnicodeDecodeError:
        return [f"{path}:1: file is not valid UTF-8"]

    lines = text.splitlines()
    in_block_comment = False
    saw_pragma_once = False
    first_code_line = None

    for lineno, raw in enumerate(lines, start=1):
        line = raw
        # Track /* ... */ block comments line-by-line.
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2:]
            in_block_comment = False
        while True:
            start = line.find("/*")
            if start < 0:
                break
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block_comment = True
                break
            line = line[:start] + line[end + 2:]

        code = strip_strings_and_comments(line)
        stripped = code.strip()

        if stripped == "#pragma once":
            saw_pragma_once = True
        if stripped and first_code_line is None:
            first_code_line = lineno

        if RAW_ASSERT.search(STATIC_ASSERT.sub("", code)):
            problems.append(
                f"{path}:{lineno}: raw assert() — use SYM_CHECK/SYM_DCHECK (util/check.hpp)"
            )
        if RAW_RAND.search(code):
            problems.append(
                f"{path}:{lineno}: rand()/srand() — use the seeded util::Rng instead"
            )
        if path.suffix in HEADER_SUFFIXES and USING_NAMESPACE.search(code):
            problems.append(
                f"{path}:{lineno}: `using namespace` in a header leaks into every includer"
            )

    if path.suffix in HEADER_SUFFIXES and not saw_pragma_once:
        problems.append(f"{path}:1: header missing #pragma once")

    return problems


def collect(paths: list[str]) -> list[Path]:
    files: list[Path] = []
    for p in paths:
        path = Path(p)
        if path.is_dir():
            files.extend(
                f for f in sorted(path.rglob("*")) if f.suffix in CPP_SUFFIXES and f.is_file()
            )
        elif path.is_file():
            files.append(path)
        else:
            print(f"lint.py: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return files


def main(argv: list[str]) -> int:
    paths = argv[1:] or ["src"]
    files = collect(paths)
    if not files:
        print(f"lint.py: no C++ files under: {' '.join(paths)}", file=sys.stderr)
        return 2
    problems: list[str] = []
    for f in files:
        problems.extend(check_file(f))
    for p in problems:
        print(p)
    if problems:
        print(f"lint.py: {len(problems)} problem(s) in {len(files)} files", file=sys.stderr)
        return 1
    print(f"lint.py: OK ({len(files)} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
