#!/usr/bin/env python3
"""lint.py -- repo-specific lint rules clang-tidy cannot express.

Usage: scripts/lint.py [--json FILE] [paths...]   (default: src/ examples/)

Rules (see README "Correctness tooling"):
  no-raw-assert        assert() is banned in committed C++: it vanishes under
                       NDEBUG and bypasses the SYM_CHECK violation registry.
                       Use SYM_CHECK / SYM_DCHECK from util/check.hpp.
  no-rand              rand()/srand() are banned: experiments must be
                       reproducible through util::Rng's seeded streams.
  no-using-namespace-in-header
                       `using namespace` in a header pollutes every includer.
  pragma-once          every header must open with #pragma once (include
                       guards are not used in this repo).
  raw-mutex            a mutex member in src/ must guard something: the file
                       must annotate at least one field with
                       SYM_GUARDED_BY(<that mutex>) (util/thread_annotations.hpp),
                       or the declaration line must carry an explicit
                       `// symlint: unguarded` waiver saying why not.
                       Prefer util::Mutex over std::mutex -- std::mutex is
                       invisible to clang's thread-safety analysis.

Exit status: 0 when clean, 1 when any rule fires.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

CPP_SUFFIXES = {".cpp", ".hpp", ".h", ".cc", ".hh"}
HEADER_SUFFIXES = {".hpp", ".h", ".hh"}

RAW_ASSERT = re.compile(r"(?<![\w.])assert\s*\(")
STATIC_ASSERT = re.compile(r"static_assert\s*\(")
RAW_RAND = re.compile(r"(?<![\w:.])s?rand\s*\(")
USING_NAMESPACE = re.compile(r"^\s*using\s+namespace\b")
# Mutex member/variable declarations: `std::mutex m_;`, `util::Mutex m_;`,
# `Mutex m_;` (optionally `mutable`). References/pointers deliberately do not
# match -- only the owning declaration needs the annotation.
MUTEX_DECL = re.compile(r"\b(?:std::mutex|(?:util::)?Mutex)\s+(\w+)\s*;")
UNGUARDED_WAIVER = re.compile(r"//\s*symlint:\s*unguarded")


def strip_strings_and_comments(line: str, in_block_comment: bool = False) -> tuple[str, bool]:
    """Remove string/char literal contents, // line comments and /* */ block
    comments from one line of C++.

    Returns (code, in_block_comment'): the stripped code and whether a block
    comment is still open after this line -- feed that back in for the next
    line. Stripped comments are replaced by a single space (like the
    preprocessor) so adjacent tokens do not fuse. Comment markers inside
    string literals are literal text, not comments; quotes inside comments do
    not open strings.
    """
    out: list[str] = []
    quote: str | None = None
    i = 0
    n = len(line)
    while i < n:
        ch = line[i]
        if in_block_comment:
            end = line.find("*/", i)
            if end < 0:
                return "".join(out), True
            out.append(" ")
            i = end + 2
            in_block_comment = False
            continue
        if quote:
            if ch == "\\":
                i += 2
                continue
            if ch == quote:
                quote = None
                out.append(ch)
            i += 1
            continue
        if ch in "\"'":
            quote = ch
            out.append(ch)
            i += 1
            continue
        if line.startswith("//", i):
            break
        if line.startswith("/*", i):
            in_block_comment = True
            i += 2
            continue
        out.append(ch)
        i += 1
    return "".join(out), in_block_comment


def check_file(path: Path) -> list[tuple[str, int, str, str]]:
    """-> [(file, line, rule, message)] so text and --json render one list."""
    problems: list[tuple[str, int, str, str]] = []

    def report(lineno: int, rule: str, message: str) -> None:
        problems.append((str(path), lineno, rule, message))

    try:
        text = path.read_text(encoding="utf-8")
    except UnicodeDecodeError:
        report(1, "utf-8", "file is not valid UTF-8")
        return problems

    lines = text.splitlines()
    in_block_comment = False
    saw_pragma_once = False
    first_code_line = None
    mutex_decls: list[tuple[int, str, bool]] = []  # (lineno, name, waived)
    code_lines: list[str] = []

    for lineno, raw in enumerate(lines, start=1):
        code, in_block_comment = strip_strings_and_comments(raw, in_block_comment)
        code_lines.append(code)
        stripped = code.strip()

        if stripped == "#pragma once":
            saw_pragma_once = True
        if stripped and first_code_line is None:
            first_code_line = lineno

        if RAW_ASSERT.search(STATIC_ASSERT.sub("", code)):
            report(lineno, "no-raw-assert",
                   "raw assert() — use SYM_CHECK/SYM_DCHECK (util/check.hpp)")
        if RAW_RAND.search(code):
            report(lineno, "no-rand",
                   "rand()/srand() — use the seeded util::Rng instead")
        if path.suffix in HEADER_SUFFIXES and USING_NAMESPACE.search(code):
            report(lineno, "no-using-namespace-in-header",
                   "`using namespace` in a header leaks into every includer")
        for match in MUTEX_DECL.finditer(code):
            mutex_decls.append((lineno, match.group(1), bool(UNGUARDED_WAIVER.search(raw))))

    if path.suffix in HEADER_SUFFIXES and not saw_pragma_once:
        report(1, "pragma-once", "header missing #pragma once")

    # raw-mutex: enforced under src/ only (tests may build ad-hoc sync objects).
    if "src" in path.parts and mutex_decls:
        all_code = "\n".join(code_lines)
        for lineno, name, waived in mutex_decls:
            if waived:
                continue
            if not re.search(rf"SYM_GUARDED_BY\(\s*{re.escape(name)}\s*\)", all_code):
                report(lineno, "raw-mutex",
                       f"mutex '{name}' guards no SYM_GUARDED_BY field — "
                       "annotate the protected state (util/thread_annotations.hpp) or add "
                       "`// symlint: unguarded` with a reason")

    return problems


def collect(paths: list[str]) -> list[Path]:
    files: list[Path] = []
    for p in paths:
        path = Path(p)
        if path.is_dir():
            files.extend(
                f for f in sorted(path.rglob("*")) if f.suffix in CPP_SUFFIXES and f.is_file()
            )
        elif path.is_file():
            files.append(path)
        else:
            print(f"lint.py: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return files


def default_paths() -> list[str]:
    # Examples are linted alongside src/: they are the code users copy first.
    return [p for p in ("src", "examples") if Path(p).is_dir()] or ["src"]


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--json", type=Path, default=None,
                        help="write machine-readable findings to this file")
    parser.add_argument("paths", nargs="*", help="files/directories to lint "
                        "(default: src/ and examples/ when present)")
    args = parser.parse_args(argv[1:])
    paths = args.paths or default_paths()
    files = collect(paths)
    if not files:
        print(f"lint.py: no C++ files under: {' '.join(paths)}", file=sys.stderr)
        return 2
    problems: list[tuple[str, int, str, str]] = []
    for f in files:
        problems.extend(check_file(f))
    for file, lineno, _rule, message in problems:
        print(f"{file}:{lineno}: {message}")
    if args.json:
        payload = {
            "tool": "lint",
            "version": 1,
            "files_scanned": len(files),
            "findings": [
                {"checker": "lint", "rule": rule, "file": file, "line": lineno,
                 "message": message, "waived": False}
                for file, lineno, rule, message in problems
            ],
            "counts": {"error": len(problems), "waived": 0},
        }
        args.json.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    if problems:
        print(f"lint.py: {len(problems)} problem(s) in {len(files)} files", file=sys.stderr)
        return 1
    print(f"lint.py: OK ({len(files)} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
