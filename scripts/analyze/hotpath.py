#!/usr/bin/env python3
"""hotpath.py -- "symhot": object-level hot-path purity analyzer ("symlint"
engine 6, the companion gate to the perf gate).

The paper's premise is that footprint-signature scheduling is cheap enough to
run continuously; ROADMAP item 3 turns that into a hard decision-latency
budget. The perf gate catches regressions after they land as nanoseconds --
symhot statically prevents the classic latency cliffs instead: an allocation,
a lock, a throw path, or unannounced virtual dispatch sneaking into the
per-access simulation and scheduling kernels.

How it works (no compiler plugin, no source parsing of attributes):

  1. Hot-path roots are marked SYM_HOT and sanctioned cold sinks SYM_COLD
     (src/util/hotpath.hpp). The macros place the out-of-line symbol in a
     dedicated ELF section (.text.symhot / .text.symhot_cold) WITHOUT
     inhibiting inlining, so the standalone copy the analyzer reads is the
     same code callers inline.
  2. Every relwithdebinfo object file under the build tree's src/ is
     disassembled with `objdump -drl`. Call edges come from the text
     relocations (direct calls and tail jumps) plus objdump's local symbol
     resolution; `call *...` sites are recorded as indirect with the
     file:line the DWARF line table attributes to them.
  3. The static call graph is traversed from every root, stopping at
     sinks. Any reachable call to a forbidden callee class is a finding:
       alloc   operator new/delete, malloc/free and friends
       lock    pthread_mutex/rwlock/cond, std::mutex, __cxa_guard_* (a
               function-local static's guard is a lock)
       throw   __cxa_throw/__cxa_allocate_exception, std::__throw_*,
               terminate/abort
       io      printf family, iostream emission
     plus opaque-extern (an undefined symbol outside the small allowlist of
     proven-pure externs: memcpy/memset/..., libgcc popcount, unwind
     personality) and indirect-call (virtual/function-pointer dispatch).
  4. Indirect calls are waivable -- `// symhot: indirect(<reason>)` on the
     call line or alone directly above it, mirrored by a [[waiver]] entry in
     scripts/analyze/hotpath_waivers.toml (two-way, exactly like symdet;
     shared machinery in scripts/analyze/waivers.py).
  5. The annotated set itself is registered: every .text.symhot symbol must
     match a [[root]] entry in scripts/analyze/hotpath_roots.toml and vice
     versa (same for [[sink]]), so adding or dropping a hot root is always a
     reviewed diff in one place.

Cold-path throw/alloc code split into `[clone .cold]` parts lands in
.text.unlikely; the traversal follows the section-relative relocations into
those parts, so a conditional `throw` inside a hot function is still found.

Usage:
  scripts/analyze/hotpath.py [--root DIR] [--build-dir DIR | --objects O...]
                             [--roots FILE] [--registry FILE] [--json FILE]
                             [--list-roots] [--objdump BIN] [--cxxfilt BIN]

Exit status: 0 clean, 1 findings, 2 usage/environment error.
"""

from __future__ import annotations

import argparse
import json
import re
import subprocess
import sys
import tomllib
from dataclasses import dataclass, field
from pathlib import Path

_ANALYZE_DIR = str(Path(__file__).resolve().parent)
if _ANALYZE_DIR not in sys.path:
    sys.path.insert(0, _ANALYZE_DIR)

import waivers
from waivers import Finding, Waiver, WaiverGrammar

SYMHOT_GRAMMAR = WaiverGrammar(
    tool="symhot",
    comment_re=re.compile(r"//\s*symhot:\s*(?P<payload>.*)$"),
    payload_re=re.compile(r"^indirect\(\s*(?P<reason>[^)]*?)\s*\)\s*$"),
    expected="`// symhot: indirect(<non-empty reason>)`",
    registry_display="scripts/analyze/hotpath_waivers.toml",
)

ROOT_SECTION = ".text.symhot"
SINK_SECTION = ".text.symhot_cold"

# Forbidden callee classes, matched on the RAW (mangled or C) symbol name.
FORBIDDEN: list[tuple[str, re.Pattern[str], str]] = [
    ("alloc",
     re.compile(r"^_Zn[wa]|^_Zd[la]"
                r"|^(malloc|calloc|realloc|reallocarray|free|aligned_alloc"
                r"|posix_memalign|strdup|strndup)$"),
     "allocates/frees on the hot path -- hoist the buffer to setup"),
    ("lock",
     re.compile(r"^pthread_(mutex|rwlock|cond|spin|barrier)_"
                r"|^__cxa_guard_(acquire|release|abort)$"
                r"|^sem_(wait|timedwait|trywait|post)$"
                r"|^_ZNSt5mutex|^_ZNSt12recursive_mutex|^_ZNSt12shared_mutex"
                r"|^_ZNSt18shared_timed_mutex|^_ZNSt22condition_variable"),
     "takes a lock on the hot path (a function-local static's guard counts)"),
    ("throw",
     re.compile(r"^__cxa_(throw|rethrow|allocate_exception|free_exception"
                r"|bad_cast|bad_typeid)$"
                r"|^_ZSt\d+__throw_"
                r"|^_ZSt9terminatev$|^abort$|^__assert_fail$"),
     "reaches a throw/terminate path -- guard with SYM_DCHECK (compiled out "
     "on the measured build) or prove the branch impossible"),
    ("io",
     re.compile(r"^(printf|fprintf|sprintf|snprintf|vsnprintf|vfprintf|vprintf"
                r"|puts|fputs|fputc|putchar|fwrite|write|fflush|perror)$"
                r"|^_ZNSo|^_ZNSt13basic_ostream|^_ZSt16__ostream_insert"
                r"|^_ZNSt8ios_base|^_ZNSt9basic_ios"),
     "emits I/O on the hot path -- route through a SYM_COLD recorder sink"),
]

# Externs with known-pure implementations the traversal accepts silently.
ALLOWED_EXTERN = re.compile(
    r"^(memcpy|memmove|memset|memcmp|bcmp|strlen|strcmp|strncmp)$"
    r"|^__popcount[ds]i2$"
    r"|^_Unwind_Resume$|^__gxx_personality_v0$|^__stack_chk_fail$")


def fail_usage(message: str) -> "NoReturn":  # noqa: F821
    print(f"hotpath.py: {message}", file=sys.stderr)
    sys.exit(2)


# --------------------------------------------------------------------------
# Object-file parsing


@dataclass
class CallSite:
    target: str | None        # raw symbol name; None for indirect calls
    kind: str                 # "direct" | "indirect"
    file: str                 # source file objdump attributes the call to
    line: int


@dataclass
class FuncNode:
    name: str                 # raw symbol name
    section: str
    obj: str                  # object file the definition lives in
    is_local: bool            # 'l' binding: resolve callers within this object only
    calls: list[CallSite] = field(default_factory=list)


SYMTAB_RE = re.compile(r"^([0-9a-f]+) (.{7}) (\S+)\s+([0-9a-f]+)\s+(.+)$")
SECTION_RE = re.compile(r"^Disassembly of section (\S+):$")
SYMSTART_RE = re.compile(r"^[0-9a-f]+ <(.+)>:$")
SRCLINE_RE = re.compile(r"^(\S.*?):(\d+)(?: \(discriminator \d+\))?$")
INSN_RE = re.compile(r"^\s+([0-9a-f]+):\t(\S+)\s*(.*)$")
RELOC_RE = re.compile(r"^\s+([0-9a-f]+): (R_\S+)\t(.+?)(?:([+-])0x([0-9a-f]+))?$")
TARGET_RE = re.compile(r"^[0-9a-f]+ <(.+?)(?:\+0x[0-9a-f]+)?>")


def run_tool(cmd: list[str], what: str) -> str:
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True)
    except OSError as exc:
        fail_usage(f"cannot run {cmd[0]} ({what}): {exc}")
    if proc.returncode != 0:
        fail_usage(f"{cmd[0]} failed on {what}: {proc.stderr.strip()}")
    return proc.stdout


@dataclass
class ObjectInfo:
    path: str
    # function symbols: name -> (section, addr, size, is_local)
    funcs: dict[str, tuple[str, int, int, bool]]
    # per-section sorted [(addr, size, name)] for resolving section+offset
    by_section: dict[str, list[tuple[int, int, str]]]


def read_symtab(objdump: str, obj: Path) -> ObjectInfo:
    funcs: dict[str, tuple[str, int, int, bool]] = {}
    by_section: dict[str, list[tuple[int, int, str]]] = {}
    for line in run_tool([objdump, "-t", str(obj)], str(obj)).splitlines():
        match = SYMTAB_RE.match(line)
        if not match:
            continue
        addr, flags, section, size, name = match.groups()
        if "F" not in flags:          # functions only
            continue
        addr_i, size_i = int(addr, 16), int(size, 16)
        is_local = flags[0] == "l"
        if name not in funcs or not is_local:
            funcs[name] = (section, addr_i, size_i, is_local)
        by_section.setdefault(section, []).append((addr_i, size_i, name))
    for entries in by_section.values():
        entries.sort()
    return ObjectInfo(str(obj), funcs, by_section)


def func_at(info: ObjectInfo, section: str, addr: int) -> str | None:
    for start, size, name in info.by_section.get(section, []):
        if start <= addr < start + max(size, 1):
            return name
    return None


def resolve_reloc_target(info: ObjectInfo, name: str, sign: str | None,
                         addend: str | None) -> str | None:
    """A relocation names either a symbol directly (`_Znwm-0x4`) or a section
    plus offset (`.text.unlikely+0x34` -- local cold clones). For PC-relative
    call relocations the shown addend carries the usual -4 bias, so the real
    in-section target is addend + 4."""
    if not name.startswith("."):
        return name
    offset = int(addend, 16) * (-1 if sign == "-" else 1) if addend else 0
    for candidate in (offset + 4, offset):
        resolved = func_at(info, name, candidate)
        if resolved is not None:
            return resolved
    return None


JUMP_MNEMONICS = re.compile(r"^(jmp|ja|jae|jb|jbe|jc|je|jg|jge|jl|jle|jna|jnae"
                            r"|jnb|jnbe|jnc|jne|jng|jnge|jnl|jnle|jno|jnp|jns"
                            r"|jnz|jo|jp|jpe|jpo|js|jz)q?$")


def parse_object(objdump: str, obj: Path, nodes: dict[str, FuncNode],
                 local_nodes: dict[str, dict[str, FuncNode]]) -> ObjectInfo:
    """Disassemble one object and add its functions + call edges."""
    info = read_symtab(objdump, obj)
    text = run_tool([objdump, "-drl", "--no-show-raw-insn", str(obj)], str(obj))

    current: FuncNode | None = None
    cur_file, cur_line = "", 0
    last_call: CallSite | None = None   # direct call/jmp awaiting its reloc
    last_call_addr = -1

    def node_for(name: str) -> FuncNode:
        section, _, _, is_local = info.funcs.get(name, (".text", 0, 0, True))
        node = FuncNode(name, section, info.path, is_local)
        if is_local:
            local_nodes.setdefault(info.path, {})[name] = node
        else:
            nodes.setdefault(name, node)
            node = nodes[name]
        return node

    for line in text.splitlines():
        sym = SYMSTART_RE.match(line)
        if sym:
            current = node_for(sym.group(1))
            last_call = None
            continue
        if SECTION_RE.match(line):
            current = None
            last_call = None
            continue
        reloc = RELOC_RE.match(line)
        if reloc and current is not None and last_call is not None:
            raddr = int(reloc.group(1), 16)
            if last_call_addr <= raddr <= last_call_addr + 6:
                target = resolve_reloc_target(info, reloc.group(3),
                                              reloc.group(4), reloc.group(5))
                last_call.target = target
                if target is None:
                    # Unresolvable relocation: surface as indirect so it is
                    # never silently dropped.
                    last_call.kind = "indirect"
                last_call = None
            continue
        insn = INSN_RE.match(line)
        if insn and current is not None:
            addr, mnemonic, operands = insn.groups()
            last_call = None
            if mnemonic in ("call", "callq"):
                if operands.startswith("*"):
                    current.calls.append(
                        CallSite(None, "indirect", cur_file, cur_line))
                else:
                    target = TARGET_RE.match(operands)
                    site = CallSite(target.group(1) if target else None,
                                    "direct" if target else "indirect",
                                    cur_file, cur_line)
                    current.calls.append(site)
                    last_call = site
                    last_call_addr = int(addr, 16)
            elif JUMP_MNEMONICS.match(mnemonic) and operands.startswith("*"):
                # An indirect jmp is either an indirect tail call or a switch
                # jump table; the two are indistinguishable at this level, so
                # report conservatively -- a genuine jump table on a hot path
                # is waivable (and worth a review anyway).
                current.calls.append(
                    CallSite(None, "indirect", cur_file, cur_line))
            elif JUMP_MNEMONICS.match(mnemonic):
                # A jump leaving the current function is a tail call.
                target = TARGET_RE.match(operands)
                if target and target.group(1) != current.name:
                    site = CallSite(target.group(1), "direct", cur_file, cur_line)
                    current.calls.append(site)
                    last_call = site
                    last_call_addr = int(addr, 16)
                elif target:
                    # Looks like an intra-function jump, but a following reloc
                    # may retarget it (e.g. into the function's own [clone
                    # .cold] part in .text.unlikely); keep it provisionally.
                    site = CallSite(None, "intra", cur_file, cur_line)
                    current.calls.append(site)
                    last_call = site
                    last_call_addr = int(addr, 16)
            continue
        src = SRCLINE_RE.match(line)
        if src and not line.endswith("():"):
            cur_file, cur_line = src.group(1), int(src.group(2))

    # Intra-function jumps whose reloc turned out to point elsewhere became
    # real edges; plain "intra" leftovers are not calls at all.
    for per_obj in ([nodes] + [local_nodes.get(info.path, {})]):
        for node in per_obj.values():
            node.calls = [c for c in node.calls if c.kind != "intra"
                          or c.target is not None]
    return info


def demangle_all(cxxfilt: str, names: list[str]) -> dict[str, str]:
    if not names:
        return {}
    try:
        proc = subprocess.run([cxxfilt], input="\n".join(names) + "\n",
                              capture_output=True, text=True)
    except OSError as exc:
        fail_usage(f"cannot run {cxxfilt}: {exc}")
    lines = proc.stdout.splitlines()
    if proc.returncode != 0 or len(lines) != len(names):
        return {name: name for name in names}
    return dict(zip(names, lines))


# --------------------------------------------------------------------------
# Root/sink registry (two-way, like the waiver registry)


def load_roots(path: Path) -> tuple[list[dict[str, str]], list[dict[str, str]]]:
    try:
        with path.open("rb") as fh:
            data = tomllib.load(fh)
    except (OSError, tomllib.TOMLDecodeError) as exc:
        fail_usage(f"cannot read roots registry {path}: {exc}")
    roots = data.get("root", [])
    sinks = data.get("sink", [])
    for kind, entries, required in (("root", roots, ("symbol",)),
                                    ("sink", sinks, ("symbol", "reason"))):
        if not isinstance(entries, list):
            fail_usage(f"registry {path}: [[{kind}]] must be an array of tables")
        for entry in entries:
            for key in required:
                if not isinstance(entry.get(key), str) or not entry[key]:
                    fail_usage(f"registry {path}: every [[{kind}]] needs "
                               f"non-empty string '{key}'")
            try:
                re.compile(entry["symbol"])
            except re.error as exc:
                fail_usage(f"registry {path}: [[{kind}]] symbol regex "
                           f"'{entry['symbol']}': {exc}")
    return roots, sinks


def reconcile_roots(kind: str, entries: list[dict[str, str]],
                    demangled: list[str], roots_display: str) -> list[Finding]:
    findings = []
    matched = [False] * len(entries)
    for name in sorted(demangled):
        hit = False
        for i, entry in enumerate(entries):
            if re.search(entry["symbol"], name):
                matched[i] = True
                hit = True
        if not hit:
            section = ROOT_SECTION if kind == "root" else SINK_SECTION
            findings.append(Finding(
                "registry", f"unregistered-{kind}", "", 0,
                f"symbol '{name}' lives in {section} but matches no "
                f"[[{kind}]] entry -- register it in {roots_display}"))
    for i, entry in enumerate(entries):
        if not matched[i]:
            findings.append(Finding(
                "registry", f"stale-{kind}", "", 0,
                f"[[{kind}]] regex '{entry['symbol']}' matches no annotated "
                "symbol -- remove it or restore the SYM_HOT/SYM_COLD annotation"))
    return findings


# --------------------------------------------------------------------------
# Traversal


class Graph:
    def __init__(self, nodes: dict[str, FuncNode],
                 local_nodes: dict[str, dict[str, FuncNode]]):
        self.nodes = nodes
        self.local_nodes = local_nodes

    def resolve(self, caller: FuncNode, name: str) -> FuncNode | None:
        local = self.local_nodes.get(caller.obj, {})
        if name in local:
            return local[name]
        return self.nodes.get(name)

    def all_nodes(self) -> list[FuncNode]:
        out = list(self.nodes.values())
        for per_obj in self.local_nodes.values():
            out.extend(per_obj.values())
        return out


def relativize(path: str, root: Path) -> str:
    try:
        return str(Path(path).resolve().relative_to(root))
    except ValueError:
        return path


def traverse(graph: Graph, roots: list[FuncNode], sinks: set[int],
             dem: dict[str, str], repo_root: Path) -> list[Finding]:
    """Walk the call graph from every root; report forbidden callees and
    indirect sites once per (site, rule) with a representative path."""
    findings: list[Finding] = []
    seen_sites: set[tuple[str, str, str, int, str]] = set()
    visited: dict[int, str] = {}     # id(node) -> root it was first reached from

    def name_of(raw: str) -> str:
        return dem.get(raw, raw)

    def classify_forbidden(raw: str) -> tuple[str, str] | None:
        for cls, pattern, why in FORBIDDEN:
            if pattern.search(raw):
                return cls, why
        return None

    for root in roots:
        stack = [(root, (name_of(root.name),))]
        while stack:
            node, path = stack.pop()
            if id(node) in visited:
                continue
            visited[id(node)] = root.name
            for site in node.calls:
                rel = relativize(site.file, repo_root)
                if site.kind == "indirect" or site.target is None:
                    key = ("indirect", "indirect-call", rel, site.line, "")
                    if key in seen_sites:
                        continue
                    seen_sites.add(key)
                    findings.append(Finding(
                        "indirect", "indirect-call", rel, site.line,
                        f"indirect call in '{name_of(node.name)}' on the hot "
                        f"path from '{path[0]}' -- make the dispatch explicit "
                        "with `// symhot: indirect(<reason>)` or devirtualize"))
                    continue
                raw = site.target

                def report_purity(cls: str, why: str) -> None:
                    key = ("purity", cls, rel, site.line, raw)
                    if key in seen_sites:
                        return
                    seen_sites.add(key)
                    chain = " -> ".join([*path, name_of(raw)]) \
                        if len(path) > 1 else f"{path[0]} -> {name_of(raw)}"
                    findings.append(Finding("purity", cls, rel, site.line,
                                            f"{chain}: {why}"))

                verdict = classify_forbidden(raw)
                if verdict is not None:
                    report_purity(*verdict)
                    continue
                callee = graph.resolve(node, raw)
                if callee is None:
                    if not ALLOWED_EXTERN.search(raw):
                        report_purity(
                            "opaque-extern",
                            "calls an extern with unknown purity -- define "
                            "it, prove it pure and extend the allowlist, or "
                            "keep it off the hot path")
                    continue
                if id(callee) in sinks:
                    continue     # sanctioned SYM_COLD boundary
                if id(callee) not in visited:
                    stack.append((callee, (*path, name_of(callee.name))))
    return findings


# --------------------------------------------------------------------------
# Waiver scanning over the source tree


SOURCE_GLOBS = ("*.cpp", "*.cc", "*.hpp", "*.h", "*.hh")


def scan_source_waivers(root: Path) -> tuple[list[Waiver], list[Finding]]:
    all_waivers: list[Waiver] = []
    errors: list[Finding] = []
    trees = [root / "src", root / "examples"]
    for tree in trees:
        if not tree.is_dir():
            continue
        for pattern in SOURCE_GLOBS:
            for file in sorted(tree.rglob(pattern)):
                raw = file.read_text(encoding="utf-8",
                                     errors="replace").splitlines()
                if not any("symhot:" in line for line in raw):
                    continue
                code = []
                in_block = False
                for line in raw:
                    stripped, in_block = waivers.strip_strings_and_comments(
                        line, in_block)
                    code.append(stripped)
                rel = str(file.relative_to(root))
                found, errs = waivers.scan_waivers(SYMHOT_GRAMMAR, rel, raw, code)
                all_waivers.extend(found)
                errors.extend(errs)
    return all_waivers, errors


# --------------------------------------------------------------------------
# Driver


def discover_objects(build_dir: Path) -> list[Path]:
    return sorted((build_dir / "src").rglob("*.o"))


def analyze(objects: list[Path], repo_root: Path, objdump: str, cxxfilt: str,
            roots_path: Path, registry_path: Path | None,
            list_roots: bool) -> tuple[list[Finding], int, dict[str, object]]:
    nodes: dict[str, FuncNode] = {}
    local_nodes: dict[str, dict[str, FuncNode]] = {}
    for obj in objects:
        if not obj.is_file():
            fail_usage(f"object file {obj} does not exist")
        parse_object(objdump, obj, nodes, local_nodes)

    graph = Graph(nodes, local_nodes)
    every = graph.all_nodes()
    root_nodes = [n for n in every if n.section == ROOT_SECTION]
    sink_nodes = [n for n in every if n.section == SINK_SECTION]
    if not root_nodes:
        fail_usage(
            f"no {ROOT_SECTION} symbols in {len(objects)} object file(s) -- "
            "build the relwithdebinfo objects first (cmake --preset "
            "relwithdebinfo && cmake --build build-relwithdebinfo) or check "
            "--build-dir/--objects")

    dem = demangle_all(cxxfilt, sorted({n.name for n in every}
                                       | {t for n in every for t in
                                          [c.target for c in n.calls] if t}))

    root_names = sorted(dem.get(n.name, n.name) for n in root_nodes)
    sink_names = sorted(dem.get(n.name, n.name) for n in sink_nodes)
    if list_roots:
        for name in root_names:
            print(f"root: {name}")
        for name in sink_names:
            print(f"sink: {name}")
        print(f"hotpath.py: {len(root_names)} root(s), {len(sink_names)} sink(s)")

    findings: list[Finding] = []
    root_entries, sink_entries = load_roots(roots_path)
    roots_display = "scripts/analyze/hotpath_roots.toml"
    findings += reconcile_roots("root", root_entries, root_names, roots_display)
    findings += reconcile_roots("sink", sink_entries, sink_names, roots_display)

    root_nodes.sort(key=lambda n: dem.get(n.name, n.name))
    sinks = {id(n) for n in sink_nodes}
    findings += traverse(graph, root_nodes, sinks, dem, repo_root)

    all_waivers, waiver_errors = scan_source_waivers(repo_root)
    waivers.apply_waivers(findings, all_waivers)
    findings += waiver_errors
    findings += waivers.unused_waiver_findings(all_waivers)
    entries = (waivers.load_registry(registry_path, fail_usage)
               if registry_path is not None and registry_path.is_file() else [])
    findings += waivers.reconcile_registry(
        SYMHOT_GRAMMAR, entries, [w for w in all_waivers if w.used_by])

    findings.sort(key=lambda f: (f.file, f.line, f.checker, f.rule, f.message))
    summary = {
        "roots": root_names,
        "sinks": sink_names,
        "functions": len(every),
    }
    return findings, len(objects), summary


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", type=Path, default=None,
                        help="repository root (default: two levels above this script)")
    parser.add_argument("--build-dir", type=Path, default=None,
                        help="build tree holding the relwithdebinfo objects "
                             "(default: <root>/build-relwithdebinfo, then <root>/build)")
    parser.add_argument("--objects", type=Path, nargs="+", default=None,
                        help="explicit object files to analyze (overrides --build-dir)")
    parser.add_argument("--roots", type=Path, default=None,
                        help="roots registry TOML (default: <root>/scripts/analyze/"
                             "hotpath_roots.toml)")
    parser.add_argument("--registry", type=Path, default=None,
                        help="waiver registry TOML (default: <root>/scripts/analyze/"
                             "hotpath_waivers.toml when present)")
    parser.add_argument("--json", type=Path, default=None,
                        help="write machine-readable findings to this file")
    parser.add_argument("--list-roots", action="store_true",
                        help="print the discovered roots/sinks before the verdict")
    parser.add_argument("--objdump", default="objdump", help="objdump binary")
    parser.add_argument("--cxxfilt", default="c++filt", help="c++filt binary")
    args = parser.parse_args(argv[1:])

    root = (args.root or Path(__file__).resolve().parent.parent.parent).resolve()
    objects = args.objects
    if objects is None:
        build_dir = args.build_dir
        if build_dir is None:
            for candidate in (root / "build-relwithdebinfo", root / "build"):
                if (candidate / "src").is_dir():
                    build_dir = candidate
                    break
            else:
                fail_usage(f"no build tree under {root} (pass --build-dir or "
                           "--objects; the gate reads relwithdebinfo objects)")
        elif not build_dir.is_dir():
            fail_usage(f"build dir {build_dir} does not exist")
        objects = discover_objects(build_dir)
        if not objects:
            fail_usage(f"no object files under {build_dir}/src -- build first")
    roots_path = args.roots or root / "scripts" / "analyze" / "hotpath_roots.toml"
    if not roots_path.is_file():
        fail_usage(f"roots registry {roots_path} does not exist")
    registry = args.registry
    if registry is None:
        candidate = root / "scripts" / "analyze" / "hotpath_waivers.toml"
        registry = candidate if candidate.is_file() else None
    elif not registry.is_file():
        fail_usage(f"waiver registry {registry} does not exist")

    findings, scanned, summary = analyze(
        objects, root, args.objdump, args.cxxfilt, roots_path, registry,
        args.list_roots)

    errors = [f for f in findings if not f.waived]
    waived = [f for f in findings if f.waived]

    if args.json:
        payload = {
            "tool": "symhot",
            "version": 1,
            "objects_scanned": scanned,
            "roots": summary["roots"],
            "sinks": summary["sinks"],
            "functions": summary["functions"],
            "findings": [vars(f) for f in findings],
            "counts": {"error": len(errors), "waived": len(waived)},
        }
        args.json.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    for finding in findings:
        print(f"hotpath: {finding.render()}")
    if errors:
        print(f"hotpath.py: {len(errors)} finding(s) ({len(waived)} waived) "
              f"across {scanned} object file(s)", file=sys.stderr)
        return 1
    print(f"hotpath.py: OK ({len(summary['roots'])} roots, "
          f"{len(summary['sinks'])} sinks, {summary['functions']} functions, "
          f"{scanned} objects"
          + (f", {len(waived)} waived finding(s)" if waived else "") + ")")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
