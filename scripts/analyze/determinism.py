#!/usr/bin/env python3
"""determinism.py -- "symdet": determinism & RNG-discipline analysis ("symlint" engine 3).

Every result this repository reports (golden run-reports, differential-kernel
identity, serial-vs-ThreadPool sweeps) rests on bit-reproducible simulation.
symdet makes that a statically checked contract over the deterministic
modules (src/sig, src/cachesim, src/sched, src/machine, src/vm, src/workload,
src/core -- util and obs are deliberately outside: they own the sanctioned
nondeterministic boundary, i.e. wall-clock stopwatches, SYMBIOSIS_LOG env
control and the seeded util::Rng itself).

Like layering.py, the set of analyzed translation units is driven by
compile_commands.json when one is available (CI shares the `tidy` preset
database); headers belonging to the deterministic modules are always scanned.
examples/ sources are held to the same contract -- example binaries drive the
deterministic modules end-to-end and are the code users copy first.
The inline-waiver <-> registry machinery is shared with symhot
(scripts/analyze/waivers.py).
The engine is a comment/string-aware lexical analyzer -- no libclang needed
in the build image -- and every rule has a committed fixture exercising both
the firing and the clean direction (tests/tooling/test_determinism.py).

Checkers
  entropy   ambient entropy/state sources are banned in deterministic
            modules: std::rand/srand, std::random_device, wall clocks
            (time(), clock(), gettimeofday, chrono system/steady/
            high_resolution clocks), getenv-derived values, std:: random
            engines that bypass util::Rng (mt19937 et al.), and std::hash
            over pointer types (address-space layout leaks into values).
  ordering  iteration over std::unordered_{map,set,multimap,multiset} whose
            loop body writes to anything that escapes the loop (returns,
            reports, accumulators declared outside the body), and std::sort/
            std::stable_sort ordered by raw pointer value. A traversal whose
            accumulation is genuinely commutative can be annotated with
            SYM_ORDER_INSENSITIVE("why") from util/determinism.hpp on the
            statement or the immediately preceding code line.
  rng       RNG discipline: util::Rng must never be default-constructed and
            never seeded from an integer literal -- seeds must arrive
            through a parameter that traces back to config/CLI. Rng members
            declared without an initializer must be seeded in a mem-init
            list. Inside lambdas handed to ThreadPool entry points
            (parallel_for, parallel_for_sharded, submit) a by-reference
            captured Rng may only be .split() -- mutating a shared generator
            across task boundaries makes the draw sequence schedule-
            dependent. Generators declared inside the task body are fine,
            including ones assigned from a .split() substream without a
            spelled-out Rng type (`auto rng = base.split(i)` -- the
            run_sweep_grid sharding shape).
  waiver    waiver hygiene: malformed `// symdet:` comments, waivers that
            suppress nothing, inline waivers missing from the committed
            registry, and registry entries matching no inline waiver.

Waiver grammar
  // symdet: nondet(<non-empty reason>)
placed on the offending line, or alone on the line directly above it. Every
inline waiver must also be registered in scripts/analyze/
determinism_waivers.toml ([[waiver]] file/checker/reason) so sanctioned
exceptions are reviewed in one place.

Usage:
  scripts/analyze/determinism.py [--root DIR] [--compile-db FILE]
                                 [--modules a,b,...] [--registry FILE]
                                 [--json FILE] [--list-waivers]

Exit status: 0 clean, 1 findings, 2 usage/environment error.
"""

from __future__ import annotations

import argparse
import json
import re
import shlex
import sys
from dataclasses import dataclass
from pathlib import Path

_ANALYZE_DIR = str(Path(__file__).resolve().parent)
if _ANALYZE_DIR not in sys.path:
    sys.path.insert(0, _ANALYZE_DIR)

import waivers
from waivers import Finding, Waiver, WaiverGrammar

SYMDET_GRAMMAR = WaiverGrammar(
    tool="symdet",
    comment_re=re.compile(r"//\s*symdet:\s*(?P<payload>.*)$"),
    payload_re=re.compile(r"^nondet\(\s*(?P<reason>[^)]*?)\s*\)\s*$"),
    expected="`// symdet: nondet(<non-empty reason>)`",
    registry_display="scripts/analyze/determinism_waivers.toml",
)

DETERMINISTIC_MODULES = ("cachesim", "core", "machine", "sched", "sig", "vm", "workload")

HEADER_SUFFIXES = {".hpp", ".h", ".hh"}
SOURCE_SUFFIXES = {".cpp", ".cc"}

ORDER_INSENSITIVE_RE = re.compile(r"\bSYM_ORDER_INSENSITIVE\s*\(")

ENTROPY_RULES: list[tuple[str, re.Pattern[str], str]] = [
    ("std-rand", re.compile(r"(?<![\w.:])(?:std\s*::\s*)?s?rand\s*\("),
     "rand()/srand() bypass the seeded util::Rng"),
    ("random-device", re.compile(r"\brandom_device\b"),
     "std::random_device draws hardware entropy; seed util::Rng from config"),
    ("wall-clock", re.compile(r"\b(?:system_clock|steady_clock|high_resolution_clock)\b"),
     "wall-clock reads make runs time-dependent (obs::Stopwatch is the "
     "sanctioned boundary for measurement)"),
    ("time-call", re.compile(r"(?<![\w.:])(?:std\s*::\s*)?(?:time|clock)\s*\(\s*"
                             r"(?:NULL|nullptr|0|&\w+|\))"),
     "time()/clock() read the wall clock"),
    ("time-call", re.compile(r"\b(?:gettimeofday|clock_gettime|timespec_get)\b"),
     "wall-clock syscalls make runs time-dependent"),
    ("getenv", re.compile(r"(?<![\w.:])(?:std\s*::\s*)?getenv\s*\("),
     "environment-derived values are invisible to the run config; thread "
     "them through config/CLI instead"),
    ("foreign-engine",
     re.compile(r"\b(?:mt19937(?:_64)?|default_random_engine|minstd_rand0?"
                r"|ranlux\d+(?:_base)?|knuth_b)\b"),
     "std:: random engines bypass util::Rng's seed/split discipline"),
    ("pointer-hash", re.compile(r"\bhash\s*<[^<>;]*\*\s*>"),
     "hashing a pointer leaks address-space layout into values"),
]

THREADPOOL_ENTRY_RE = re.compile(r"\b(?:parallel_for(?:_sharded)?|submit)\s*\(")
RNG_MUTATION_METHODS = ("next_below", "next_range", "next_double", "next_bool",
                        "next_normal", "next_exponential", "shuffle", "reseed")
INT_LITERAL_RE = re.compile(r"^(?:0[xX][0-9a-fA-F']+|\d[\d']*)(?:[uU]?[lL]{0,2}|[lL]{1,2}[uU]?)$")


def fail_usage(message: str) -> "NoReturn":  # noqa: F821
    print(f"determinism.py: {message}", file=sys.stderr)
    sys.exit(2)


# --------------------------------------------------------------------------
# Lexing: comment/string stripping (same contract as scripts/lint.py)


def strip_strings_and_comments(line: str, in_block_comment: bool = False) -> tuple[str, bool]:
    """Strip string/char contents and comments from one line; returns the
    stripped code and whether a /* */ block comment stays open."""
    out: list[str] = []
    quote: str | None = None
    i = 0
    n = len(line)
    while i < n:
        ch = line[i]
        if in_block_comment:
            end = line.find("*/", i)
            if end < 0:
                return "".join(out), True
            out.append(" ")
            i = end + 2
            in_block_comment = False
            continue
        if quote:
            if ch == "\\":
                i += 2
                continue
            if ch == quote:
                quote = None
                out.append(ch)
            i += 1
            continue
        if ch in "\"'":
            quote = ch
            out.append(ch)
            i += 1
            continue
        if line.startswith("//", i):
            break
        if line.startswith("/*", i):
            in_block_comment = True
            i += 2
            continue
        out.append(ch)
        i += 1
    return "".join(out), in_block_comment


@dataclass
class FileScan:
    path: Path
    rel: str
    raw: list[str]
    code: list[str]            # comment/string-stripped, line-aligned
    text: str                  # "\n".join(code)
    offsets: list[int]         # offset of each line start in text
    waivers: list[Waiver]
    waiver_errors: list[Finding]

    def line_of(self, offset: int) -> int:
        lo, hi = 0, len(self.offsets) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.offsets[mid] <= offset:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1


def scan_file(path: Path, root: Path) -> FileScan:
    rel = str(path.relative_to(root))
    try:
        raw = path.read_text(encoding="utf-8", errors="replace").splitlines()
    except OSError as exc:
        fail_usage(f"cannot read {path}: {exc}")
    code: list[str] = []
    in_block = False
    for line in raw:
        stripped, in_block = strip_strings_and_comments(line, in_block)
        code.append(stripped)

    file_waivers, waiver_errors = waivers.scan_waivers(SYMDET_GRAMMAR, rel, raw, code)

    text = "\n".join(code)
    offsets = [0]
    for line in code[:-1]:
        offsets.append(offsets[-1] + len(line) + 1)
    return FileScan(path, rel, raw, code, text, offsets, file_waivers, waiver_errors)


# --------------------------------------------------------------------------
# Small parsing helpers over the stripped text


def match_bracket(text: str, start: int, open_ch: str, close_ch: str) -> int:
    """Index one past the bracket closing text[start] (which must be open_ch),
    or -1 when unbalanced."""
    depth = 0
    for i in range(start, len(text)):
        ch = text[i]
        if ch == open_ch:
            depth += 1
        elif ch == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def match_angle(text: str, start: int) -> int:
    """Like match_bracket for template angle brackets; tolerates >> closers."""
    depth = 0
    for i in range(start, len(text)):
        ch = text[i]
        if ch == "<":
            depth += 1
        elif ch == ">":
            depth -= 1
            if depth <= 0:
                return i + 1
        elif ch in ";{":
            return -1  # statement ended: not a template argument list
    return -1


def statement_extent(text: str, start: int) -> int:
    """End offset of the statement (or brace block) beginning at start."""
    i = start
    while i < len(text):
        ch = text[i]
        if ch == ";":
            return i + 1
        if ch == "{":
            end = match_bracket(text, i, "{", "}")
            return end if end > 0 else len(text)
        if ch == "(":
            end = match_bracket(text, i, "(", ")")
            i = end if end > 0 else i + 1
            continue
        i += 1
    return len(text)


DECL_IN_BODY_RE = re.compile(
    r"(?:^|[;{(])\s*(?:const\s+)?(?:auto|bool|int|unsigned|long|float|double|char|"
    r"std\s*::\s*\w+|[A-Za-z_]\w*(?:\s*::\s*\w+)*)\b(?:\s*<[^;{}]*?>)?[&\s*]+"
    r"(\w+)\s*(?:=|\{|;|\[)", re.MULTILINE)
WRITE_RE = re.compile(
    r"(?:\breturn\b\s*[^;]|"                                  # value return
    r"\b(?P<pre>\w+)(?:\s*(?:\[[^\]]*\]|\.\w+|->\w+))*\s*"
    r"(?:=(?!=)|\+=|-=|\*=|/=|\|=|&=|\^=|<<=|>>=|\+\+|--)|"   # assignment
    r"\b(?P<obj>\w+)\s*(?:\.|->)\s*"
    r"(?:push_back|push_front|insert|emplace\w*|add|record|append|set|"
    r"observe|increment|store)\s*\()")


def body_escapes(body: str, local_names: set[str]) -> str | None:
    """Return a short description of the first escaping write in a loop body,
    or None when every write stays local to the body."""
    for decl in DECL_IN_BODY_RE.finditer(body):
        local_names.add(decl.group(1))
    for write in WRITE_RE.finditer(body):
        target = write.group("pre") or write.group("obj")
        if target is None:
            return "returns a value computed during traversal"
        if target not in local_names:
            return f"writes to '{target}' which outlives the loop body"
    return None


# --------------------------------------------------------------------------
# Checkers


def check_entropy(scan: FileScan) -> list[Finding]:
    findings = []
    for lineno, line in enumerate(scan.code, start=1):
        for rule, pattern, why in ENTROPY_RULES:
            if pattern.search(line):
                findings.append(Finding("entropy", rule, scan.rel, lineno, why))
    return findings


def unordered_names(scan: FileScan) -> set[str]:
    """Variable/member names declared with an unordered container type."""
    names = set()
    for match in re.finditer(r"\bunordered_(?:map|set|multimap|multiset)\s*<", scan.text):
        close = match_angle(scan.text, match.end() - 1)
        if close < 0:
            continue
        after = re.match(r"\s*[&*]*\s*(\w+)\s*[;={(,)]", scan.text[close:])
        if after and after.group(1) not in {"const", "auto"}:
            names.add(after.group(1))
    return names


def order_sanctioned(scan: FileScan, lineno: int) -> bool:
    """SYM_ORDER_INSENSITIVE on the statement line or the previous code line."""
    if ORDER_INSENSITIVE_RE.search(scan.code[lineno - 1]):
        return True
    for prev in range(lineno - 1, 0, -1):
        if not scan.code[prev - 1].strip():
            continue
        return bool(ORDER_INSENSITIVE_RE.search(scan.code[prev - 1]))
    return False


def check_ordering(scan: FileScan) -> list[Finding]:
    findings = []
    names = unordered_names(scan)
    flagged_lines: set[int] = set()

    def name_in(expr: str) -> str | None:
        for name in names:
            if re.search(rf"\b{re.escape(name)}\b", expr):
                return name
        return None

    # Range-for over an unordered container.
    for match in re.finditer(r"\bfor\s*\(", scan.text):
        close = match_bracket(scan.text, match.end() - 1, "(", ")")
        if close < 0:
            continue
        header = scan.text[match.end():close - 1]
        colon = _top_level_colon(header)
        if colon < 0:
            continue
        loop_var = _last_identifier(header[:colon])
        range_expr = header[colon + 1:]
        name = name_in(range_expr)
        if name is None:
            continue
        lineno = scan.line_of(match.start())
        if order_sanctioned(scan, lineno):
            continue
        body = scan.text[close:statement_extent(scan.text, close)]
        escape = body_escapes(body, {loop_var} if loop_var else set())
        if escape is None:
            continue
        flagged_lines.add(lineno)
        findings.append(Finding(
            "ordering", "unordered-traversal", scan.rel, lineno,
            f"iteration over unordered container '{name}' {escape}; iteration "
            "order is hash/layout-dependent -- iterate a sorted view, or annotate "
            "SYM_ORDER_INSENSITIVE(\"why\") if the accumulation is commutative"))

    # Iterator-style traversal (begin()/cbegin(), incl. via std:: algorithms).
    for name in names:
        for match in re.finditer(rf"\b{re.escape(name)}\s*\.\s*c?begin\s*\(", scan.text):
            lineno = scan.line_of(match.start())
            if lineno in flagged_lines or order_sanctioned(scan, lineno):
                continue
            flagged_lines.add(lineno)
            findings.append(Finding(
                "ordering", "unordered-traversal", scan.rel, lineno,
                f"iterator traversal of unordered container '{name}'; iteration "
                "order is hash/layout-dependent -- iterate a sorted view, or "
                "annotate SYM_ORDER_INSENSITIVE(\"why\")"))

    # Sorting by raw pointer value.
    for match in re.finditer(r"\b(?:std\s*::\s*)?(?:stable_)?sort\s*\(", scan.text):
        close = match_bracket(scan.text, match.end() - 1, "(", ")")
        if close < 0:
            continue
        args = scan.text[match.end():close - 1]
        lineno = scan.line_of(match.start())
        if re.search(r"\bless\s*<[^<>;]*\*\s*>", args):
            findings.append(Finding(
                "ordering", "pointer-sort", scan.rel, lineno,
                "std::less over a pointer type orders by address; sort by a "
                "stable key instead"))
            continue
        lam = re.search(
            r"\[[^\]]*\]\s*\(\s*(?:const\s+)?[\w:]+(?:\s*<[^()]*?>)?\s*\*\s*(?:const\s+)?(\w+)\s*,"
            r"\s*(?:const\s+)?[\w:]+(?:\s*<[^()]*?>)?\s*\*\s*(?:const\s+)?(\w+)\s*\)"
            r"\s*(?:->\s*\w+\s*)?\{(.*)\}", args, re.DOTALL)
        if lam:
            a, b, body = lam.group(1), lam.group(2), lam.group(3)
            raw_compare = (re.search(rf"(?<![\w*.>]){re.escape(a)}\s*[<>]\s*{re.escape(b)}(?![\w(])", body)
                           or re.search(rf"(?<![\w*.>]){re.escape(b)}\s*[<>]\s*{re.escape(a)}(?![\w(])", body))
            if raw_compare:
                findings.append(Finding(
                    "ordering", "pointer-sort", scan.rel, lineno,
                    f"comparator orders '{a}'/'{b}' by raw pointer value; pointer "
                    "order varies run-to-run -- compare a stable field instead"))
    return findings


def _top_level_colon(header: str) -> int:
    depth = 0
    for i, ch in enumerate(header):
        if ch in "([{<":
            depth += 1
        elif ch in ")]}>":
            depth -= 1
        elif ch == ":" and depth == 0:
            if i + 1 < len(header) and header[i + 1] == ":":
                continue
            if i > 0 and header[i - 1] == ":":
                continue
            return i
    return -1


def _last_identifier(decl: str) -> str | None:
    idents = re.findall(r"\w+", decl)
    return idents[-1] if idents else None


RNG_TYPE_RE = re.compile(r"\b(?:util\s*::\s*)?Rng\b")


def check_rng(scan: FileScan, module_files: list[FileScan]) -> list[Finding]:
    findings = []
    rng_vars: set[str] = {"rng", "rng_"}  # conventional names, plus declared ones

    for match in RNG_TYPE_RE.finditer(scan.text):
        before = scan.text[:match.start()].rstrip()
        if before.endswith(("class", "struct", "explicit", "~", "::")):
            continue
        rest = scan.text[match.end():]
        lineno = scan.line_of(match.start())

        temp = re.match(r"\s*([({])", rest)
        if temp:  # temporary: util::Rng{...} / Rng(...)
            open_ch = temp.group(1)
            close_ch = ")" if open_ch == "(" else "}"
            start = match.end() + temp.start(1)
            end = match_bracket(scan.text, start, open_ch, close_ch)
            if end < 0:
                continue
            args = scan.text[start + 1:end - 1].strip()
            findings.extend(_rng_construction_findings(scan, lineno, args, "temporary"))
            continue

        decl = re.match(r"\s*(\w+)\s*([;({=,)])", rest)
        if not decl:
            continue
        name, sep = decl.group(1), decl.group(2)
        if sep in {",", ")"}:
            rng_vars.add(name)  # function parameter: seeded by the caller
            continue
        rng_vars.add(name)
        if sep == ";":
            if not _member_init_found(name, scan, module_files):
                findings.append(Finding(
                    "rng", "default-constructed", scan.rel, lineno,
                    f"Rng '{name}' is default-constructed (falls back to the "
                    "built-in constant seed); seed it from config/CLI, for a "
                    "member via the mem-init list"))
            continue
        if sep == "=":
            init = rest[decl.end(2):statement_extent(rest, decl.end(2))]
            inner = re.search(r"\bRng\s*[({]([^)}]*)[)}]", init)
            if inner is not None:
                findings.extend(_rng_construction_findings(
                    scan, lineno, inner.group(1).strip(), name))
            continue
        # sep in {"(", "{"}: direct initialization
        open_ch = sep
        close_ch = ")" if open_ch == "(" else "}"
        start = match.end() + decl.start(2)
        end = match_bracket(scan.text, start, open_ch, close_ch)
        if end < 0:
            continue
        args = scan.text[start + 1:end - 1].strip()
        findings.extend(_rng_construction_findings(scan, lineno, args, name))

    findings.extend(_check_rng_shared(scan, rng_vars))
    return findings


def _rng_construction_findings(scan: FileScan, lineno: int, args: str,
                               what: str) -> list[Finding]:
    if not args:
        return [Finding(
            "rng", "default-constructed", scan.rel, lineno,
            f"Rng {what} is default-constructed (built-in constant seed); "
            "pass a seed that traces back to config/CLI")]
    if INT_LITERAL_RE.match(args):
        return [Finding(
            "rng", "literal-seed", scan.rel, lineno,
            f"Rng {what} is seeded from the literal {args}; hardcoded seeds "
            "hide the reproducibility knob -- thread the seed from config/CLI "
            "(derive substreams with .split())")]
    return []


def _member_init_found(name: str, scan: FileScan, module_files: list[FileScan]) -> bool:
    """Is `name` initialized in a mem-init list (or reseeded) anywhere in its
    module? Members like `util::Rng rng_;` must appear as `: rng_(seed)`."""
    pattern = re.compile(rf"[:,]\s*{re.escape(name)}\s*[({{]|\b{re.escape(name)}\s*\.\s*reseed\s*\(")
    for other in module_files:
        if pattern.search(other.text):
            return True
    return False


def _check_rng_shared(scan: FileScan, rng_vars: set[str]) -> list[Finding]:
    findings = []
    for match in THREADPOOL_ENTRY_RE.finditer(scan.text):
        close = match_bracket(scan.text, match.end() - 1, "(", ")")
        if close < 0:
            continue
        call = scan.text[match.end():close - 1]
        call_line = scan.line_of(match.start())
        for lam in re.finditer(r"\[(?P<capture>[^\]]*)\]\s*(?:\([^)]*\))?\s*"
                               r"(?:mutable\s*)?(?:->\s*[\w:]+\s*)?\{", call):
            if "&" not in lam.group("capture"):
                continue  # by-value copies are per-task state, fine
            body_start = lam.end() - 1
            body_end = match_bracket(call, body_start, "{", "}")
            body = call[body_start:body_end if body_end > 0 else len(call)]
            for name in sorted(rng_vars):
                esc = re.escape(name)
                if re.search(rf"\bRng\b[^;()]*?\b{esc}\s*[=({{;]", body):
                    continue  # declared inside the task body: per-task state
                if re.search(rf"\b{esc}\s*=\s*[^;{{}}]*?\.\s*split\s*\(", body):
                    # Assigned from a .split() substream inside the task (e.g.
                    # `auto rng = base.split(i)` in run_sweep_grid's sharding):
                    # per-shard derived state, the sanctioned pattern.
                    continue
                mutation = re.search(
                    rf"\b{esc}\s*\(|\b{esc}\s*(?:\.|->)\s*(?:{'|'.join(RNG_MUTATION_METHODS)})\s*\(",
                    body)
                if mutation:
                    lineno = call_line + call[:body_start + mutation.start()].count("\n")
                    findings.append(Finding(
                        "rng", "shared-across-tasks", scan.rel, lineno,
                        f"Rng '{name}' is captured by reference and mutated inside "
                        "a ThreadPool task; the draw sequence then depends on "
                        "worker interleaving -- give each shard its own "
                        f"{name}.split(shard_id) generator"))
    return findings


# --------------------------------------------------------------------------
# File discovery (compile_commands.json-driven, like layering.py)


def find_compile_db(root: Path) -> Path | None:
    candidates = [root / "compile_commands.json", root / "build-tidy" / "compile_commands.json"]
    candidates += sorted(root.glob("build*/compile_commands.json"))
    for candidate in candidates:
        if candidate.is_file():
            return candidate
    return None


def compile_db_sources(path: Path) -> set[Path]:
    try:
        entries = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        fail_usage(f"cannot read compile database {path}: {exc}")
    out = set()
    db_dir = path.parent
    for entry in entries:
        directory = Path(entry.get("directory", "."))
        if not directory.is_absolute():
            directory = (db_dir / directory).resolve()
        file = Path(entry["file"])
        if not file.is_absolute():
            file = (directory / file).resolve()
        out.add(file)
        _ = shlex  # kept for parity with layering.py's db handling
    return out


def collect_files(root: Path, modules: list[str], compile_db: Path | None) -> list[Path]:
    src_root = root / "src"
    if not src_root.is_dir():
        fail_usage(f"no src/ directory under {root}")
    db_sources = compile_db_sources(compile_db) if compile_db else None
    files = []
    # Example binaries drive the deterministic modules end-to-end, so they are
    # held to the same contract (a wall-clock or hardcoded seed in an example
    # would silently regress RNG discipline in the very code users copy).
    scan_dirs = [src_root / module for module in modules]
    scan_dirs.append(root / "examples")
    for scan_dir in scan_dirs:
        if not scan_dir.is_dir():
            continue
        for file in sorted(scan_dir.rglob("*")):
            if not file.is_file():
                continue
            if file.suffix in HEADER_SUFFIXES:
                files.append(file)          # headers are module-owned: always scanned
            elif file.suffix in SOURCE_SUFFIXES:
                # With a database, only TUs the build actually compiles are
                # analyzed (mirrors layering.py's orphan semantics).
                if db_sources is None or file.resolve() in db_sources:
                    files.append(file)
    return files


# --------------------------------------------------------------------------
# Driver


def module_of(rel: str) -> str:
    """Cross-file grouping key: src/<module>/... groups by module, anything
    else (examples/) by its top-level directory."""
    parts = Path(rel).parts
    return parts[1] if parts[0] == "src" and len(parts) > 1 else parts[0]


def analyze(root: Path, modules: list[str], compile_db: Path | None,
            registry_path: Path | None) -> tuple[list[Finding], list[Waiver], int]:
    files = collect_files(root, modules, compile_db)
    if not files:
        fail_usage(f"no C++ files found under {root}/src for modules: {', '.join(modules)}")

    scans = [scan_file(f, root) for f in files]
    by_module: dict[str, list[FileScan]] = {}
    for scan in scans:
        by_module.setdefault(module_of(scan.rel), []).append(scan)

    findings: list[Finding] = []
    all_waivers: list[Waiver] = []
    for scan in scans:
        raw_findings = (check_entropy(scan)
                        + check_ordering(scan)
                        + check_rng(scan, by_module[module_of(scan.rel)]))
        waivers.apply_waivers(raw_findings, scan.waivers)
        findings.extend(raw_findings)
        findings.extend(scan.waiver_errors)
        all_waivers.extend(scan.waivers)

    findings.extend(waivers.unused_waiver_findings(all_waivers))

    if registry_path is not None and registry_path.is_file():
        entries = waivers.load_registry(registry_path, fail_usage)
        findings.extend(waivers.reconcile_registry(
            SYMDET_GRAMMAR, entries, [w for w in all_waivers if w.used_by]))

    findings.sort(key=lambda f: (f.file, f.line, f.checker, f.rule))
    return findings, all_waivers, len(scans)


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", type=Path, default=None,
                        help="repository root (default: two levels above this script)")
    parser.add_argument("--compile-db", type=Path, default=None,
                        help="compile_commands.json (default: searched under <root>; "
                             "without one, every src/<module> file is scanned)")
    parser.add_argument("--no-compile-db", action="store_true",
                        help="ignore any compile database and scan the whole tree")
    parser.add_argument("--modules", default=",".join(DETERMINISTIC_MODULES),
                        help="comma-separated deterministic modules "
                             f"(default: {','.join(DETERMINISTIC_MODULES)})")
    parser.add_argument("--registry", type=Path, default=None,
                        help="waiver registry TOML (default: <root>/scripts/analyze/"
                             "determinism_waivers.toml when present)")
    parser.add_argument("--json", type=Path, default=None,
                        help="write machine-readable findings to this file")
    parser.add_argument("--list-waivers", action="store_true",
                        help="print every inline waiver with its reason and exit")
    args = parser.parse_args(argv[1:])

    root = (args.root or Path(__file__).resolve().parent.parent.parent).resolve()
    modules = [m.strip() for m in args.modules.split(",") if m.strip()]
    if not modules:
        fail_usage("--modules must name at least one module")
    compile_db = args.compile_db
    if args.no_compile_db:
        if compile_db is not None:
            fail_usage("--compile-db and --no-compile-db are mutually exclusive")
    elif compile_db is None:
        compile_db = find_compile_db(root)   # optional: tree scan without one
    elif not compile_db.is_file():
        fail_usage(f"compile database {compile_db} does not exist")
    registry = args.registry
    if registry is None:
        candidate = root / "scripts" / "analyze" / "determinism_waivers.toml"
        registry = candidate if candidate.is_file() else None
    elif not registry.is_file():
        fail_usage(f"waiver registry {registry} does not exist")

    findings, waivers, scanned = analyze(root, modules, compile_db, registry)

    if args.list_waivers:
        for waiver in sorted(waivers, key=lambda w: (w.file, w.line)):
            state = "live" if waiver.used_by else "UNUSED"
            print(f"{waiver.file}:{waiver.line}: [{state}] nondet({waiver.reason})")
        print(f"determinism.py: {len(waivers)} waiver(s)")
        return 0

    errors = [f for f in findings if not f.waived]
    waived = [f for f in findings if f.waived]

    if args.json:
        payload = {
            "tool": "symdet",
            "version": 1,
            "modules": modules,
            "files_scanned": scanned,
            "compile_db": str(compile_db) if compile_db else None,
            "findings": [vars(f) for f in findings],
            "counts": {"error": len(errors), "waived": len(waived)},
        }
        args.json.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    for finding in findings:
        print(f"determinism: {finding.render()}")
    if errors:
        print(f"determinism.py: {len(errors)} finding(s) "
              f"({len(waived)} waived) across {scanned} files", file=sys.stderr)
        return 1
    suffix = f", {len(waived)} waived finding(s)" if waived else ""
    print(f"determinism.py: OK ({scanned} files, {len(modules)} modules{suffix})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
