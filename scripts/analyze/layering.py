#!/usr/bin/env python3
"""layering.py -- include-graph layering enforcement ("symlint" engine 2).

Parses the include graph of the repository -- translation units and include
search paths come from compile_commands.json, headers are scanned directly --
and checks it against the declared module DAG in layers.toml:

  back-edge   a file in src/<A> includes a header of src/<B> where B is not
              reachable from A in the declared DAG (depending on a module
              implies its transitive dependencies)
  cycle       a file-level include cycle inside src/ (mutually including
              headers; #pragma once hides these at compile time but they are
              always a layering smell)
  cpp-include an #include whose target is a .cpp/.cc file
  orphan      a header under src/ that no compiled translation unit reaches
              (dead code the build silently carries)
  manifest    src/ modules missing from layers.toml, unknown dependency
              names, or a cyclic manifest

Usage:
  scripts/analyze/layering.py [--root DIR] [--manifest FILE]
                              [--compile-db FILE] [--src-dir NAME]
                              [--skip-orphans] [--json FILE]

Defaults resolve against --root (the repo root): the manifest is
<root>/scripts/analyze/layers.toml or <root>/layers.toml, the compile
database is <root>/compile_commands.json, <root>/build-tidy/... or the first
<root>/build*/compile_commands.json found. CI generates the database once
with `cmake --preset tidy` and shares it with clang-tidy.

Exit status: 0 clean, 1 violations found, 2 usage/environment error.
"""

from __future__ import annotations

import argparse
import json
import re
import shlex
import sys
import tomllib
from pathlib import Path

HEADER_SUFFIXES = {".hpp", ".h", ".hh"}
SOURCE_SUFFIXES = {".cpp", ".cc"}
INCLUDE_RE = re.compile(r'^\s*#\s*include\s*(?:"([^"]+)"|<([^>]+)>)')


def fail_usage(message: str) -> "NoReturn":  # noqa: F821 (py3.11 typing brevity)
    print(f"layering.py: {message}", file=sys.stderr)
    sys.exit(2)


# --------------------------------------------------------------------------
# Manifest


def load_manifest(path: Path) -> dict[str, list[str]]:
    try:
        with path.open("rb") as fh:
            data = tomllib.load(fh)
    except (OSError, tomllib.TOMLDecodeError) as exc:
        fail_usage(f"cannot read manifest {path}: {exc}")
    layers = data.get("layers")
    if not isinstance(layers, dict) or not layers:
        fail_usage(f"manifest {path} has no [layers] table")
    for module, deps in layers.items():
        if not isinstance(deps, list) or any(not isinstance(d, str) for d in deps):
            fail_usage(f"manifest {path}: layers.{module} must be a list of module names")
    return {module: list(deps) for module, deps in layers.items()}


def manifest_problems(layers: dict[str, list[str]], modules_on_disk: set[str]) -> list[str]:
    problems = []
    for module, deps in sorted(layers.items()):
        for dep in deps:
            if dep not in layers:
                problems.append(
                    f"manifest: layers.{module} depends on undeclared module '{dep}'"
                )
            if dep == module:
                problems.append(f"manifest: layers.{module} depends on itself")
    for module in sorted(modules_on_disk - set(layers)):
        problems.append(
            f"manifest: module '{module}' has code under src/ but is not declared in layers.toml"
        )
    # Cycle check on the declared graph (DFS three-colour).
    state: dict[str, int] = {}  # 0 visiting, 1 done

    def visit(module: str, trail: list[str]) -> None:
        if state.get(module) == 1:
            return
        if state.get(module) == 0:
            cycle = trail[trail.index(module):] + [module]
            problems.append("manifest-cycle: " + " -> ".join(cycle))
            return
        state[module] = 0
        for dep in layers.get(module, []):
            if dep in layers:
                visit(dep, trail + [module])
        state[module] = 1

    for module in sorted(layers):
        visit(module, [])
    return problems


def transitive_allowed(layers: dict[str, list[str]]) -> dict[str, set[str]]:
    """allowed[A] = modules reachable from A (A itself included)."""
    allowed: dict[str, set[str]] = {}

    def reach(module: str) -> set[str]:
        if module in allowed:
            return allowed[module]
        allowed[module] = {module}  # pre-seed to terminate on (reported) cycles
        out = {module}
        for dep in layers.get(module, []):
            if dep in layers:
                out |= reach(dep)
        allowed[module] = out
        return out

    for module in layers:
        reach(module)
    return allowed


# --------------------------------------------------------------------------
# Compile database


def find_compile_db(root: Path) -> Path | None:
    candidates = [root / "compile_commands.json", root / "build-tidy" / "compile_commands.json"]
    candidates += sorted(root.glob("build*/compile_commands.json"))
    for candidate in candidates:
        if candidate.is_file():
            return candidate
    return None


def load_compile_db(path: Path) -> list[tuple[Path, list[Path]]]:
    """-> [(translation unit, include search dirs)], repo-external TUs kept."""
    try:
        entries = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        fail_usage(f"cannot read compile database {path}: {exc}")
    db_dir = path.parent
    out = []
    for entry in entries:
        directory = Path(entry.get("directory", "."))
        if not directory.is_absolute():
            directory = (db_dir / directory).resolve()
        file = Path(entry["file"])
        if not file.is_absolute():
            file = (directory / file).resolve()
        args = entry.get("arguments") or shlex.split(entry.get("command", ""))
        inc_dirs = []
        i = 0
        while i < len(args):
            arg = args[i]
            for flag in ("-I", "-isystem", "-iquote"):
                if arg == flag and i + 1 < len(args):
                    raw = Path(args[i + 1])
                    i += 1
                    break
                if arg.startswith(flag) and len(arg) > len(flag):
                    raw = Path(arg[len(flag):])
                    break
            else:
                i += 1
                continue
            i += 1
            inc_dirs.append(raw if raw.is_absolute() else (directory / raw).resolve())
        out.append((file, inc_dirs))
    return out


# --------------------------------------------------------------------------
# Include scanning


def parse_includes(path: Path) -> list[str]:
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError:
        return []
    found = []
    for line in text.splitlines():
        match = INCLUDE_RE.match(line)
        if match:
            found.append(match.group(1) or match.group(2))
    return found


def resolve_include(target: str, including: Path, search: list[Path], root: Path) -> Path | None:
    """Resolve to a path inside root, or None (system / external header)."""
    for base in [including.parent, *search]:
        candidate = (base / target).resolve()
        if candidate.is_file() and candidate.is_relative_to(root):
            return candidate
    return None


def module_of(path: Path, src_root: Path) -> str | None:
    """src/<module>/... -> module; files directly under src/ -> None."""
    try:
        rel = path.relative_to(src_root)
    except ValueError:
        return None
    return rel.parts[0] if len(rel.parts) > 1 else None


class Analyzer:
    def __init__(self, root: Path, src_root: Path, layers: dict[str, list[str]],
                 default_search: list[Path]):
        self.root = root
        self.src_root = src_root
        self.allowed = transitive_allowed(layers)
        self.default_search = default_search
        # file -> resolved include targets (only files inside root)
        self.edges: dict[Path, list[Path]] = {}

    def scan(self, path: Path, search: list[Path]) -> list[Path]:
        if path in self.edges:
            return self.edges[path]
        resolved = []
        for target in parse_includes(path):
            dest = resolve_include(target, path, search, self.root)
            if dest is not None:
                resolved.append(dest)
        self.edges[path] = resolved
        return resolved

    def rel(self, path: Path) -> str:
        return str(path.relative_to(self.root))

    def check_src_tree(self) -> list[str]:
        """Back-edges, .cpp includes and include cycles over every src/ file."""
        problems = []
        src_files = sorted(
            f for f in self.src_root.rglob("*")
            if f.is_file() and f.suffix in HEADER_SUFFIXES | SOURCE_SUFFIXES
        )
        for file in src_files:
            from_module = module_of(file, self.src_root)
            for dest in self.scan(file, self.default_search):
                if dest.suffix in SOURCE_SUFFIXES:
                    problems.append(
                        f"cpp-include: {self.rel(file)} includes {self.rel(dest)} "
                        "(never #include a .cpp file; give it a header)"
                    )
                to_module = module_of(dest, self.src_root)
                if from_module is None or to_module is None or to_module == from_module:
                    continue
                if to_module not in self.allowed.get(from_module, {from_module}):
                    problems.append(
                        f"back-edge: {self.rel(file)} includes {self.rel(dest)} "
                        f"(module '{from_module}' may not depend on '{to_module}'; "
                        "see scripts/analyze/layers.toml)"
                    )
        problems.extend(self.find_cycles(src_files))
        return problems

    def find_cycles(self, src_files: list[Path]) -> list[str]:
        """Tarjan SCC over the src/ include graph; SCCs > 1 (or self-loops)."""
        index: dict[Path, int] = {}
        lowlink: dict[Path, int] = {}
        on_stack: set[Path] = set()
        stack: list[Path] = []
        sccs: list[list[Path]] = []
        counter = [0]
        src_set = set(src_files)

        def strongconnect(node: Path) -> None:
            # Iterative Tarjan (explicit stack) to survive deep include chains.
            work = [(node, iter(self.edges.get(node, [])))]
            index[node] = lowlink[node] = counter[0]
            counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            while work:
                current, edge_iter = work[-1]
                advanced = False
                for dest in edge_iter:
                    if dest not in src_set:
                        continue
                    if dest not in index:
                        index[dest] = lowlink[dest] = counter[0]
                        counter[0] += 1
                        stack.append(dest)
                        on_stack.add(dest)
                        work.append((dest, iter(self.edges.get(dest, []))))
                        advanced = True
                        break
                    if dest in on_stack:
                        lowlink[current] = min(lowlink[current], index[dest])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[current])
                if lowlink[current] == index[current]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == current:
                            break
                    if len(component) > 1 or current in self.edges.get(current, []):
                        sccs.append(sorted(component))

        for file in src_files:
            if file not in index:
                strongconnect(file)

        problems = []
        for component in sorted(sccs):
            names = " -> ".join(self.rel(p) for p in component) + f" -> {self.rel(component[0])}"
            problems.append(f"cycle: include cycle inside src/: {names}")
        return problems

    def check_orphans(self, compile_db: list[tuple[Path, list[Path]]]) -> list[str]:
        """Headers under src/ not reachable from any compiled TU's closure."""
        reached: set[Path] = set()
        frontier = []
        tu_search: dict[Path, list[Path]] = {}
        for tu, search in compile_db:
            if tu.is_file():
                frontier.append((tu, search))
        if not frontier:
            return ["manifest: compile database lists no existing translation units"]
        while frontier:
            file, search = frontier.pop()
            if file in reached:
                continue
            reached.add(file)
            for dest in self.scan(file, search or self.default_search):
                if dest not in reached:
                    frontier.append((dest, search))
        problems = []
        for header in sorted(self.src_root.rglob("*")):
            if header.suffix in HEADER_SUFFIXES and header.is_file() and header not in reached:
                problems.append(
                    f"orphan: {self.rel(header)} is not reached from any compiled "
                    "translation unit (dead header, or a missing target)"
                )
        return problems


def problem_as_finding(problem: str) -> dict[str, object]:
    """Render one problem string in the shared analyzer findings schema
    (symdet/symhot JSON artifacts use the same keys)."""
    rule, _, message = problem.partition(": ")
    file_match = re.match(r"(\S+\.(?:hpp|h|hh|cpp|cc))\b", message)
    return {
        "checker": "layering",
        "rule": rule,
        "file": file_match.group(1) if file_match else "",
        "line": 0,
        "message": message,
        "waived": False,
    }


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", type=Path, default=None,
                        help="repository root (default: two levels above this script)")
    parser.add_argument("--manifest", type=Path, default=None,
                        help="layers.toml path (default: <root>/scripts/analyze/layers.toml "
                             "or <root>/layers.toml)")
    parser.add_argument("--compile-db", type=Path, default=None,
                        help="compile_commands.json path (default: searched under <root>)")
    parser.add_argument("--src-dir", default="src", help="layered tree name (default: src)")
    parser.add_argument("--skip-orphans", action="store_true",
                        help="skip the orphan-header check (no compile database needed)")
    parser.add_argument("--json", type=Path, default=None,
                        help="write machine-readable findings to this file")
    args = parser.parse_args(argv[1:])

    root = (args.root or Path(__file__).resolve().parent.parent.parent).resolve()
    src_root = root / args.src_dir
    if not src_root.is_dir():
        fail_usage(f"no {args.src_dir}/ directory under {root}")

    manifest = args.manifest
    if manifest is None:
        for candidate in (root / "scripts" / "analyze" / "layers.toml", root / "layers.toml"):
            if candidate.is_file():
                manifest = candidate
                break
        else:
            fail_usage(f"no layers.toml found under {root} (pass --manifest)")
    layers = load_manifest(manifest)

    modules_on_disk = {
        child.name for child in src_root.iterdir()
        if child.is_dir() and any(
            f.suffix in HEADER_SUFFIXES | SOURCE_SUFFIXES for f in child.rglob("*")
        )
    }
    problems = manifest_problems(layers, modules_on_disk)

    compile_db: list[tuple[Path, list[Path]]] = []
    if not args.skip_orphans:
        db_path = args.compile_db or find_compile_db(root)
        if db_path is None:
            fail_usage(
                f"no compile_commands.json under {root} "
                "(run `cmake --preset tidy`, pass --compile-db, or --skip-orphans)"
            )
        compile_db = load_compile_db(db_path)

    analyzer = Analyzer(root, src_root, layers, default_search=[src_root])
    problems += analyzer.check_src_tree()
    if not args.skip_orphans:
        problems += analyzer.check_orphans(compile_db)

    for problem in problems:
        print(f"layering: {problem}")
    checked = len(analyzer.edges)
    if args.json:
        payload = {
            "tool": "layering",
            "version": 1,
            "files_scanned": checked,
            "manifest": str(manifest),
            "findings": [problem_as_finding(p) for p in problems],
            "counts": {"error": len(problems), "waived": 0},
        }
        args.json.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    if problems:
        print(f"layering.py: {len(problems)} violation(s) across {checked} files",
              file=sys.stderr)
        return 1
    print(f"layering.py: OK ({checked} files, {len(layers)} modules, manifest {manifest.name})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
