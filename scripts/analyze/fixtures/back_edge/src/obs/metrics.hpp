#pragma once
namespace fixture::obs {
int metric();
}  // namespace fixture::obs
