#include "obs/metrics.hpp"
#include "util/base.hpp"
namespace fixture::obs {
int metric() { return 2; }
}  // namespace fixture::obs
