#pragma once
#include "obs/metrics.hpp"
namespace fixture::util {
inline int base() { return fixture::obs::metric(); }
}  // namespace fixture::util
