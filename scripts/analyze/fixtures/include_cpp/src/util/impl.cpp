int fixture_impl() { return 3; }
