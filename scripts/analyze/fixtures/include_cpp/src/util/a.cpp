#include "util/impl.cpp"
int fixture_a() { return fixture_impl(); }
