#pragma once
namespace fixture::util {
inline int base() { return 1; }
}  // namespace fixture::util
