#pragma once
#include "util/base.hpp"
namespace fixture::obs {
int metric();
}  // namespace fixture::obs
