#include "obs/metrics.hpp"
namespace fixture::obs {
int metric() { return fixture::util::base(); }
}  // namespace fixture::obs
