#pragma once
namespace fixture::util {
inline int used() { return 4; }
}  // namespace fixture::util
