#pragma once
namespace fixture::util {
inline int unused() { return 5; }
}  // namespace fixture::util
