#include "util/used.hpp"
int fixture_a() { return fixture::util::used(); }
