// Call to an undefined extern outside the proven-pure allowlist:
// purity/opaque-extern expected. Also exercises the tail-call (jmp) edge --
// at -O2 this compiles to `jmp mystery_syscall`.
#include "../../common/hot.hpp"

extern "C" long mystery_syscall(long);

FIX_HOT long hot_poke(long x) {
  return mystery_syscall(x);
}
