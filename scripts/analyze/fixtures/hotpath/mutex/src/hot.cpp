// Lock acquisition on the hot path: purity/lock expected (std::mutex
// lowers to pthread_mutex_lock/unlock calls).
#include <mutex>

#include "../../common/hot.hpp"

std::mutex g_mu;
long g_count = 0;

FIX_HOT long hot_count() {
  const std::lock_guard<std::mutex> lock(g_mu);
  return ++g_count;
}
