// Conditional throw in the root. At -O2 the throw machinery is split into a
// `[clone .cold]` part in .text.unlikely reached via a section-relative
// relocation -- the traversal must follow it: purity/throw expected.
#include <stdexcept>

#include "../../common/hot.hpp"

FIX_HOT int hot_pick(const int* v, unsigned long i, unsigned long n) {
  if (i >= n) throw std::out_of_range("index");
  return v[i];
}
