// The annotated symbol matches no [[root]] entry, and the lone entry matches
// no symbol: registry/unregistered-root and registry/stale-root expected.
#include "../../common/hot.hpp"

FIX_HOT int hot_triple(int x) {
  return x * 3;
}
