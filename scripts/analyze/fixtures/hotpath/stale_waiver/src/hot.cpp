// Clean hot path, but registry.toml carries a waiver entry matching no
// inline waiver: waiver/stale-registry expected.
#include "../../common/hot.hpp"

FIX_HOT int hot_double(int x) {
  return x * 2;
}
