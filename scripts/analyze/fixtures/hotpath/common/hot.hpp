#pragma once
// Minimal stand-ins for src/util/hotpath.hpp's SYM_HOT/SYM_COLD. The
// analyzer keys on the ELF section names, not the macro spelling, so the
// fixtures stay self-contained (no repo include paths needed).
#define FIX_HOT __attribute__((hot, section(".text.symhot")))
#define FIX_COLD __attribute__((cold, noinline, section(".text.symhot_cold")))
