// Unwaived function-pointer dispatch on the hot path: indirect/indirect-call
// expected. The volatile-qualified pointer keeps the compiler from
// devirtualizing the call at -O2.
#include "../../common/hot.hpp"

namespace {
int impl(int x) { return x * 2; }
}  // namespace

int (*volatile g_dispatch)(int) = impl;

FIX_HOT int hot_dispatch(int x) {
  return g_dispatch(x);
}
