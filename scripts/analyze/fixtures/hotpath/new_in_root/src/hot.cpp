// Allocation directly in the annotated root: purity/alloc expected.
#include "../../common/hot.hpp"

FIX_HOT int* hot_grow(unsigned long n) {
  return new int[n];
}
