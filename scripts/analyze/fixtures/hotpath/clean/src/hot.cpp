// Clean hot path: a pure loop, an allowlisted extern (memcpy), and an
// allocating slow path quarantined behind a registered SYM_COLD sink.
#include <cstring>

#include "../../common/hot.hpp"

namespace {
int helper(const int* data, unsigned long n) {
  int acc = 0;
  for (unsigned long i = 0; i < n; ++i) acc += data[i];
  return acc;
}
}  // namespace

int* g_spill = nullptr;

FIX_COLD void spill_slow(unsigned long n) {
  // Allocation behind the sanctioned cold boundary: the traversal must stop
  // at the sink without reporting purity/alloc.
  delete[] g_spill;
  g_spill = new int[n];
}

FIX_HOT int hot_sum(const int* data, int* scratch, unsigned long n) {
  if (n > (1ul << 20)) spill_slow(n);
  std::memcpy(scratch, data, n * sizeof(int));
  return helper(scratch, n);
}
