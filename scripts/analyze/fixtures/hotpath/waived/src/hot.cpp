// Same dispatch as the `indirect` fixture, but carrying a well-formed inline
// waiver mirrored in registry.toml: the run must pass with the finding
// reported as waived.
#include "../../common/hot.hpp"

namespace {
int impl(int x) { return x * 2; }
}  // namespace

int (*volatile g_dispatch)(int) = impl;

FIX_HOT int hot_dispatch(int x) {
  // symhot: indirect(fixture dispatch table; both targets are fixture roots)
  return g_dispatch(x);
}
