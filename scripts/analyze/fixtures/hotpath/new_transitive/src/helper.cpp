int* grow(unsigned long n) {
  return new int[n];
}
