// The root is allocation-free itself; the helper it calls in another
// translation unit is not. Exercises the cross-object call-graph edge:
// purity/alloc expected, attributed inside helper.cpp.
#include "../../common/hot.hpp"

int* grow(unsigned long n);

FIX_HOT int* hot_grow(unsigned long n) {
  return grow(n);
}
