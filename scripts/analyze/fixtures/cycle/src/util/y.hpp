#pragma once
#include "util/x.hpp"
