#pragma once
#include "util/y.hpp"
