#include "util/x.hpp"
int fixture_a() { return 0; }
