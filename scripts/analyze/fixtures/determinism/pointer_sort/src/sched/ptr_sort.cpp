#include <algorithm>
#include <functional>
#include <vector>
namespace fixture {
struct Node { int id; };
void order_nodes(std::vector<Node*>& nodes, std::vector<Node*>& more) {
  std::sort(nodes.begin(), nodes.end(),
            [](const Node* a, const Node* b) { return a < b; });
  std::sort(more.begin(), more.end(), std::less<Node*>{});
}
}  // namespace fixture
