#include <cstdlib>
namespace fixture {
int boot_entropy() {
  // symdet: nondet(fixture demonstrating a sanctioned ambient read)
  const char* env = std::getenv("FIXTURE_KNOB");
  return env != nullptr;
}
}  // namespace fixture
