#include <chrono>
#include <cstdlib>
#include <ctime>
#include <functional>
#include <random>
namespace fixture {
int ambient() {
  int a = std::rand();
  std::random_device rd;
  auto now = std::chrono::system_clock::now();
  (void)now;
  auto t = time(nullptr);
  const char* env = std::getenv("FIXTURE_SEED");
  std::mt19937_64 engine(rd());
  std::hash<void*> ptr_hash;
  return a + static_cast<int>(t) + (env != nullptr) +
         static_cast<int>(engine()) + static_cast<int>(ptr_hash(&a));
}
}  // namespace fixture
