#include "util/rng.hpp"
namespace fixture {
// Member never seeded anywhere in the module: flagged.
class Drifter {
  util::Rng rng_;
};
int draw() {
  util::Rng rng;  // default-constructed local: flagged
  return static_cast<int>(rng.next_below(10));
}
}  // namespace fixture
