#include <vector>
#include "util/rng.hpp"
#include "util/threadpool.hpp"
namespace fixture {

// The run_sweep_grid sharding shape: a base generator captured by reference
// but only .split() (const) is called on it; each task derives its own
// substream, here via `auto` so no `Rng` token appears in the declaration.
// Sanctioned: per-shard split generators are interleaving-independent.
std::vector<std::uint64_t> sweep(util::ThreadPool& pool, std::uint64_t seed) {
  const util::Rng base(seed);
  std::vector<std::uint64_t> seeds(64, 0);
  pool.parallel_for_sharded(0, seeds.size(), [&](std::size_t i) {
    auto rng = base.split(static_cast<std::uint64_t>(i));
    seeds[i] = rng.next_below(1u << 20);
  }, 8);
  return seeds;
}

}  // namespace fixture
