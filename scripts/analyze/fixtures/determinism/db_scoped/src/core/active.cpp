namespace fixture {
int active() { return 1; }
}  // namespace fixture
