#include <cstdlib>
namespace fixture {
int dead() { return std::rand(); }
}  // namespace fixture
