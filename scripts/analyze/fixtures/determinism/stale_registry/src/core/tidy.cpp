namespace fixture {
int clean() { return 1; }
}  // namespace fixture
