#include <cstdlib>
namespace fixture {
int f() {
  const char* a = std::getenv("A");  // symdet: nondet()
  const char* b = std::getenv("B");  // symdet: because reasons
  // symdet: nondet(this waiver covers a line with no finding)
  int unused_target = 0;
  return (a != nullptr) + (b != nullptr) + unused_target;
}
}  // namespace fixture
