#include <vector>
#include "util/rng.hpp"
#include "util/threadpool.hpp"
namespace fixture {
void sweep(util::ThreadPool& pool, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> out(64, 0.0);
  pool.parallel_for_sharded(0, out.size(), [&](std::size_t i) {
    out[i] = rng.next_double();  // shared generator across tasks: flagged
  }, 8);
}
}  // namespace fixture
