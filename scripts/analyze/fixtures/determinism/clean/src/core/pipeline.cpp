#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>
#include "util/determinism.hpp"
#include "util/rng.hpp"
#include "util/threadpool.hpp"
namespace fixture {

// Seed arrives through a parameter: fine.
int run(std::uint64_t seed, util::ThreadPool& pool) {
  util::Rng rng(seed);
  std::vector<int> out(8, 0);
  // Per-shard split is the sanctioned pattern for pool tasks.
  pool.parallel_for(0, out.size(), [&](std::size_t i) {
    util::Rng local = rng.split(i);
    out[i] = static_cast<int>(local.next_below(10));
  });

  std::unordered_set<std::uint64_t> pages;
  for (const auto v : out) pages.insert(static_cast<std::uint64_t>(v));

  // Non-escaping unordered traversal: every write stays inside the body.
  for (const auto page : pages) {
    std::uint64_t scratch = page * 2;
    (void)scratch;
  }

  // Escaping but annotated: integer sum is commutative.
  std::uint64_t total = 0;
  SYM_ORDER_INSENSITIVE("integer sum over distinct pages is commutative");
  for (const auto page : pages) total += page;

  // Ordered map traversal is always fine.
  std::map<int, int> hist;
  int acc = 0;
  for (const auto& [k, v] : hist) acc += k * v;
  return static_cast<int>(total) + acc;
}

}  // namespace fixture
