#include "machine/widget.hpp"
namespace fixture {
Widget::Widget(std::uint64_t seed) : rng_(seed) {}
}  // namespace fixture
