#pragma once
#include "util/rng.hpp"
namespace fixture {
// Member Rng without initializer: OK because the .cpp seeds it in the
// mem-init list (cross-file member-init resolution).
class Widget {
 public:
  explicit Widget(std::uint64_t seed);
 private:
  util::Rng rng_;
};
}  // namespace fixture
