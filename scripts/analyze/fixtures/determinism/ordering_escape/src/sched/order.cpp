#include <unordered_map>
#include <vector>
namespace fixture {
std::vector<int> leak_order(const std::unordered_map<int, int>& weights) {
  std::vector<int> report;
  for (const auto& [node, weight] : weights) {
    report.push_back(node * weight);  // report order = hash order: leak
  }
  double mean = 0.0;
  for (auto it = weights.begin(); it != weights.end(); ++it) {
    mean += static_cast<double>(it->second);  // FP sum: order-sensitive
  }
  (void)mean;
  return report;
}
}  // namespace fixture
