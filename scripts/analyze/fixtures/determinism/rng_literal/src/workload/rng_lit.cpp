#include "util/rng.hpp"
namespace fixture {
int draw() {
  util::Rng rng(0xdeadbeef);  // hardcoded seed: flagged
  return static_cast<int>(rng.next_below(10));
}
int draw_temp() {
  return static_cast<int>(util::Rng{12345}.next_below(10));  // flagged
}
}  // namespace fixture
