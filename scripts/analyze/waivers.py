#!/usr/bin/env python3
"""waivers.py -- inline-waiver <-> TOML-registry machinery shared by the
symdet (determinism.py) and symhot (hotpath.py) analyze gates.

Both tools use the same two-way contract:

  * a finding may be suppressed by an inline waiver comment placed on the
    offending line, or alone on the line directly above it
    (`// symdet: nondet(<reason>)`, `// symhot: indirect(<reason>)`);
  * every inline waiver must be mirrored by a [[waiver]] entry
    (file/checker/reason) in a committed TOML registry so sanctioned
    exceptions are reviewed in one place;
  * waivers that suppress nothing, registry entries matching no inline
    waiver, and malformed waiver comments are themselves findings.

This module owns the grammar-independent pieces: the Finding/Waiver value
types, the comment scanner (including the "comment-only line covers the next
code line within 3 lines" rule), waiver application, and the registry
load/reconcile logic. Each tool supplies a WaiverGrammar describing its
comment tag and payload shape, and keeps its own checker logic.

Exercised directly by tests/tooling/test_waivers.py and transitively by the
symdet/symhot suites.
"""

from __future__ import annotations

import re
import sys
import tomllib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, NoReturn


def strip_strings_and_comments(line: str, in_block_comment: bool = False) -> tuple[str, bool]:
    """Strip string/char contents and comments from one line; returns the
    stripped code and whether a /* */ block comment stays open. Same contract
    as scripts/lint.py's stripper (symhot uses this copy; symdet keeps its own
    alongside its offset-tracking scanner)."""
    out: list[str] = []
    quote: str | None = None
    i = 0
    n = len(line)
    while i < n:
        ch = line[i]
        if in_block_comment:
            end = line.find("*/", i)
            if end < 0:
                return "".join(out), True
            out.append(" ")
            i = end + 2
            in_block_comment = False
            continue
        if quote:
            if ch == "\\":
                i += 2
                continue
            if ch == quote:
                quote = None
                out.append(ch)
            i += 1
            continue
        if ch in "\"'":
            quote = ch
            out.append(ch)
            i += 1
            continue
        if line.startswith("//", i):
            break
        if line.startswith("/*", i):
            in_block_comment = True
            i += 2
            continue
        out.append(ch)
        i += 1
    return "".join(out), in_block_comment


@dataclass
class Finding:
    checker: str
    rule: str
    file: str          # repo-relative
    line: int
    message: str
    waived: bool = False

    def render(self) -> str:
        tag = " (waived)" if self.waived else ""
        return f"{self.checker}/{self.rule}: {self.file}:{self.line}: {self.message}{tag}"


@dataclass
class Waiver:
    file: str
    line: int          # line the waiver comment sits on
    reason: str
    covers: set[int] = field(default_factory=set)
    used_by: list[str] = field(default_factory=list)  # checkers it suppressed


@dataclass(frozen=True)
class WaiverGrammar:
    """What one tool's waiver comments look like and where they register."""
    tool: str                      # "symdet" / "symhot"
    comment_re: re.Pattern         # captures group 'payload' after the tag
    payload_re: re.Pattern         # captures group 'reason' inside the payload
    expected: str                  # human-readable grammar, for syntax findings
    registry_display: str          # repo-relative registry path, for messages


def default_fail(message: str) -> NoReturn:
    print(f"waivers.py: {message}", file=sys.stderr)
    sys.exit(2)


def scan_waivers(grammar: WaiverGrammar, rel: str, raw: list[str],
                 code: list[str]) -> tuple[list[Waiver], list[Finding]]:
    """Collect the inline waivers of one file.

    `raw` is the file's lines as written; `code` is the comment/string-
    stripped view (same length), used to decide whether a waiver line carries
    code of its own. A comment-only waiver line covers the next line carrying
    code, looked for within the following 3 lines.
    """
    waivers: list[Waiver] = []
    errors: list[Finding] = []
    for lineno, line in enumerate(raw, start=1):
        match = grammar.comment_re.search(line)
        if not match:
            continue
        payload = match.group("payload").strip()
        parsed = grammar.payload_re.match(payload)
        if not parsed or not parsed.group("reason"):
            errors.append(Finding(
                "waiver", "syntax", rel, lineno,
                f"malformed {grammar.tool} waiver '{payload or '(empty)'}' -- "
                f"expected {grammar.expected}"))
            continue
        covers = {lineno}
        # A comment-only waiver line covers the next line carrying code.
        if not code[lineno - 1].strip():
            for follow in range(lineno + 1, min(lineno + 4, len(raw) + 1)):
                if code[follow - 1].strip():
                    covers.add(follow)
                    break
        waivers.append(Waiver(rel, lineno, parsed.group("reason"), covers))
    return waivers, errors


def apply_waivers(findings: list[Finding], waivers: list[Waiver]) -> None:
    """Mark findings covered by a waiver; record which checker each waiver
    suppressed. Only findings in the waiver's file may be passed in."""
    for finding in findings:
        for waiver in waivers:
            if finding.line in waiver.covers:
                finding.waived = True
                waiver.used_by.append(finding.checker)
                break


def unused_waiver_findings(waivers: list[Waiver]) -> list[Finding]:
    return [Finding(
        "waiver", "unused", waiver.file, waiver.line,
        f"waiver '{waiver.reason}' suppresses no finding -- remove it")
        for waiver in waivers if not waiver.used_by]


def load_registry(path: Path,
                  fail: Callable[[str], NoReturn] = default_fail) -> list[dict[str, str]]:
    try:
        with path.open("rb") as fh:
            data = tomllib.load(fh)
    except (OSError, tomllib.TOMLDecodeError) as exc:
        fail(f"cannot read waiver registry {path}: {exc}")
    entries = data.get("waiver", [])
    if not isinstance(entries, list):
        fail(f"registry {path}: [[waiver]] must be an array of tables")
    for entry in entries:
        for key in ("file", "checker", "reason"):
            if not isinstance(entry.get(key), str) or not entry[key]:
                fail(f"registry {path}: every [[waiver]] needs non-empty "
                     f"string '{key}'")
    return entries


def reconcile_registry(grammar: WaiverGrammar, entries: list[dict[str, str]],
                       used_waivers: list[Waiver]) -> list[Finding]:
    """Inline waivers must be registered; registry entries must be live."""
    findings = []
    matched = [False] * len(entries)
    for waiver in used_waivers:
        hit = False
        for i, entry in enumerate(entries):
            if entry["file"] == waiver.file and entry["checker"] in waiver.used_by:
                matched[i] = True
                hit = True
        if not hit:
            findings.append(Finding(
                "waiver", "unregistered", waiver.file, waiver.line,
                f"inline waiver '{waiver.reason}' (suppresses "
                f"{'/'.join(sorted(set(waiver.used_by)))}) is not in the registry "
                f"-- add a [[waiver]] entry to {grammar.registry_display}"))
    for i, entry in enumerate(entries):
        if not matched[i]:
            findings.append(Finding(
                "waiver", "stale-registry", entry["file"], 0,
                f"registry waiver for checker '{entry['checker']}' matches no "
                "inline waiver -- remove it or restore the annotation"))
    return findings
