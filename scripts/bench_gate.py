#!/usr/bin/env python3
"""bench_gate.py -- compare Google Benchmark JSON output against a committed
baseline and fail on per-benchmark real_time regressions.

Usage:
  scripts/bench_gate.py check  BENCH_kernels.json run.json [more.json ...]
  scripts/bench_gate.py update BENCH_kernels.json run.json [more.json ...]

  --tolerance FRAC   allowed fractional slowdown before failing (default 0.15;
                     CI runs with the default, see the perf-gate job)
  --filter REGEX     restrict the gate to benchmarks whose name matches REGEX
                     (re.search). In check mode, only matching run entries are
                     gated and unmeasured-baseline warnings are limited to
                     matching baseline entries; in update mode, baseline
                     entries NOT matching the regex survive untouched while
                     matching ones are rewritten from the runs. A regex that
                     does not compile is a usage error (exit 2).

`check` merges the benchmark entries of every run file (later files win on
duplicate names), normalises all times to nanoseconds, and compares each
benchmark's real_time against the baseline:

  ratio = measured / baseline
  ratio >  1 + tolerance  -> REGRESSION, exit 1
  ratio <  1 - tolerance  -> improvement, printed (consider re-baselining)
  otherwise               -> OK

A baseline entry may override the global tolerance for its benchmark alone:

  "BM_CountingBloomInsertRemovePrehashed/1": {
    "real_time_ns": 9.88,
    "tolerance": 0.25
  }

Use sparingly, for kernels whose absolute time is so small (single-digit ns)
that CI-runner noise routinely exceeds the global band; the override is
printed whenever it differs from --tolerance so a loosened gate stays
visible. `update` preserves existing overrides when rewriting times.

Benchmarks present in a run but absent from the baseline are informational
("new"); baseline entries that no run file measured are warnings, not
failures, so the signature and cachesim suites can be gated by separate CI
steps against one shared baseline file.

`update` rewrites the baseline's "benchmarks" section from the run files,
preserving any other top-level keys (e.g. the "pre_pr" history section).
Re-baseline deliberately, on a quiet machine, and commit the diff together
with the change that moved the numbers — the same contract as
scripts/regen_golden_report.sh for simulation semantics.

Exit status: 0 within tolerance, 1 on any regression, 2 on a usage or
baseline-format error (missing file, entry without "real_time_ns", bad
tolerance value) -- never a raw traceback.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

#: Multipliers to nanoseconds for Google Benchmark's time_unit field.
TIME_UNITS_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def fail_usage(message: str) -> "NoReturn":  # noqa: F821
    print(f"bench_gate.py: error: {message}", file=sys.stderr)
    sys.exit(2)


def load_baseline(path: Path) -> dict:
    if not path.is_file():
        fail_usage(f"baseline file {path} does not exist")
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        fail_usage(f"cannot read baseline {path}: {exc}")


def baseline_entry(path: Path, name: str, entry: dict,
                   default_tolerance: float) -> tuple[float, float]:
    """-> (baseline ns, tolerance) for one baseline entry, exit 2 if malformed."""
    if not isinstance(entry, dict) or "real_time_ns" not in entry:
        fail_usage(
            f"baseline {path}: entry '{name}' has no \"real_time_ns\" key -- "
            "re-baseline with `scripts/bench_gate.py update` or fix the entry"
        )
    try:
        base_ns = float(entry["real_time_ns"])
    except (TypeError, ValueError):
        fail_usage(f"baseline {path}: entry '{name}' real_time_ns is not a number")
    tolerance = entry.get("tolerance", default_tolerance)
    if not isinstance(tolerance, (int, float)) or not 0 < tolerance < 10:
        fail_usage(
            f"baseline {path}: entry '{name}' tolerance override must be a "
            f"fraction in (0, 10), got {tolerance!r}"
        )
    return base_ns, float(tolerance)


def load_run_benchmarks(paths: list[Path]) -> dict[str, float]:
    """Merge run files into {benchmark name: real_time in ns}."""
    merged: dict[str, float] = {}
    for path in paths:
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            fail_usage(f"cannot read run file {path}: {exc}")
        for entry in doc.get("benchmarks", []):
            # Skip aggregate rows (mean/median/stddev from --benchmark_repetitions).
            if entry.get("run_type", "iteration") != "iteration":
                continue
            unit = TIME_UNITS_NS.get(entry.get("time_unit", "ns"))
            if unit is None:
                fail_usage(f"{path}: unknown time_unit in {entry.get('name')}")
            merged[entry["name"]] = float(entry["real_time"]) * unit
    return merged


def cmd_update(baseline_path: Path, runs: dict[str, float],
               name_filter: "re.Pattern[str] | None" = None) -> int:
    doc = load_baseline(baseline_path) if baseline_path.exists() else {}
    previous = doc.get("benchmarks", {}) if isinstance(doc.get("benchmarks"), dict) else {}
    benchmarks = {}
    if name_filter is not None:
        # Out-of-scope entries survive untouched: a filtered update re-baselines
        # one suite without dropping (or perturbing) everything else.
        for name, old in previous.items():
            if not name_filter.search(name):
                benchmarks[name] = old
    for name, ns in sorted(runs.items()):
        entry: dict = {"real_time_ns": round(ns, 2)}
        old = previous.get(name)
        if isinstance(old, dict) and "tolerance" in old:
            entry["tolerance"] = old["tolerance"]  # overrides survive re-baselining
        benchmarks[name] = entry
    doc["benchmarks"] = dict(sorted(benchmarks.items()))
    baseline_path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {len(runs)} baseline entries to {baseline_path}")
    print("review the diff and commit it with the change that moved the numbers")
    return 0


def cmd_check(baseline_path: Path, runs: dict[str, float], default_tolerance: float,
              name_filter: "re.Pattern[str] | None" = None) -> int:
    doc = load_baseline(baseline_path)
    baseline_doc = doc.get("benchmarks", {})
    if not isinstance(baseline_doc, dict):
        fail_usage(f'baseline {baseline_path}: "benchmarks" must be an object')
    baseline = {
        name: baseline_entry(baseline_path, name, entry, default_tolerance)
        for name, entry in baseline_doc.items()
    }

    regressions: list[str] = []
    for name, measured_ns in sorted(runs.items()):
        if name not in baseline:
            print(f"  new        {name}: {measured_ns:.1f} ns (not in baseline)")
            continue
        base_ns, tolerance = baseline[name]
        ratio = measured_ns / base_ns
        line = f"{name}: {measured_ns:.1f} ns vs baseline {base_ns:.1f} ns ({ratio:.2f}x)"
        if tolerance != default_tolerance:
            line += f" [tolerance {tolerance:.0%}]"
        if ratio > 1.0 + tolerance:
            regressions.append(line)
            print(f"  REGRESSION {line}")
        elif ratio < 1.0 - tolerance:
            print(f"  improved   {line}")
        else:
            print(f"  ok         {line}")

    unmeasured = set(baseline) - set(runs)
    if name_filter is not None:
        unmeasured = {name for name in unmeasured if name_filter.search(name)}
    for name in sorted(unmeasured):
        print(f"  warning    {name}: in baseline but not measured by any run file")

    if regressions:
        print(
            f"\n{len(regressions)} benchmark(s) regressed beyond their "
            "tolerance:"
        )
        for line in regressions:
            print(f"  {line}")
        print(
            "\nIf the slowdown is intentional, re-baseline with\n"
            f"  scripts/bench_gate.py update {baseline_path} <run.json ...>\n"
            "and commit the diff with an explanation."
        )
        return 1
    print(f"\nall {len(runs)} benchmarks within tolerance "
          f"(default {default_tolerance:.0%})")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("mode", choices=["check", "update"])
    parser.add_argument("baseline", type=Path)
    parser.add_argument("runs", type=Path, nargs="+")
    parser.add_argument("--tolerance", type=float, default=0.15)
    parser.add_argument("--filter", metavar="REGEX", default=None,
                        help="gate only benchmarks whose name matches REGEX "
                             "(re.search); update mode leaves non-matching "
                             "baseline entries untouched")
    args = parser.parse_args(argv)

    name_filter = None
    if args.filter is not None:
        try:
            name_filter = re.compile(args.filter)
        except re.error as exc:
            fail_usage(f"bad --filter regex {args.filter!r}: {exc}")

    runs = load_run_benchmarks(args.runs)
    if not runs:
        print("no benchmark entries found in the run files", file=sys.stderr)
        return 1
    if name_filter is not None:
        runs = {name: ns for name, ns in runs.items() if name_filter.search(name)}
        if not runs:
            print(f"no benchmark entries match --filter {args.filter!r}", file=sys.stderr)
            return 1
    if args.mode == "update":
        return cmd_update(args.baseline, runs, name_filter)
    return cmd_check(args.baseline, runs, args.tolerance, name_filter)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
