#!/usr/bin/env python3
"""bench_gate.py -- compare Google Benchmark JSON output against a committed
baseline and fail on per-benchmark real_time regressions.

Usage:
  scripts/bench_gate.py check  BENCH_kernels.json run.json [more.json ...]
  scripts/bench_gate.py update BENCH_kernels.json run.json [more.json ...]

  --tolerance FRAC   allowed fractional slowdown before failing (default 0.15;
                     CI runs with the default, see the perf-gate job)

`check` merges the benchmark entries of every run file (later files win on
duplicate names), normalises all times to nanoseconds, and compares each
benchmark's real_time against the baseline:

  ratio = measured / baseline
  ratio >  1 + tolerance  -> REGRESSION, exit 1
  ratio <  1 - tolerance  -> improvement, printed (consider re-baselining)
  otherwise               -> OK

Benchmarks present in a run but absent from the baseline are informational
("new"); baseline entries that no run file measured are warnings, not
failures, so the signature and cachesim suites can be gated by separate CI
steps against one shared baseline file.

`update` rewrites the baseline's "benchmarks" section from the run files,
preserving any other top-level keys (e.g. the "pre_pr" history section).
Re-baseline deliberately, on a quiet machine, and commit the diff together
with the change that moved the numbers — the same contract as
scripts/regen_golden_report.sh for simulation semantics.

Exit status: 0 when within tolerance, 1 on any regression or usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Multipliers to nanoseconds for Google Benchmark's time_unit field.
TIME_UNITS_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_run_benchmarks(paths: list[Path]) -> dict[str, float]:
    """Merge run files into {benchmark name: real_time in ns}."""
    merged: dict[str, float] = {}
    for path in paths:
        doc = json.loads(path.read_text())
        for entry in doc.get("benchmarks", []):
            # Skip aggregate rows (mean/median/stddev from --benchmark_repetitions).
            if entry.get("run_type", "iteration") != "iteration":
                continue
            unit = TIME_UNITS_NS.get(entry.get("time_unit", "ns"))
            if unit is None:
                raise ValueError(f"{path}: unknown time_unit in {entry.get('name')}")
            merged[entry["name"]] = float(entry["real_time"]) * unit
    return merged


def cmd_update(baseline_path: Path, runs: dict[str, float]) -> int:
    doc = json.loads(baseline_path.read_text()) if baseline_path.exists() else {}
    doc["benchmarks"] = {
        name: {"real_time_ns": round(ns, 2)} for name, ns in sorted(runs.items())
    }
    baseline_path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {len(runs)} baseline entries to {baseline_path}")
    print("review the diff and commit it with the change that moved the numbers")
    return 0


def cmd_check(baseline_path: Path, runs: dict[str, float], tolerance: float) -> int:
    doc = json.loads(baseline_path.read_text())
    baseline = {
        name: entry["real_time_ns"] for name, entry in doc.get("benchmarks", {}).items()
    }

    regressions: list[str] = []
    for name, measured_ns in sorted(runs.items()):
        base_ns = baseline.get(name)
        if base_ns is None:
            print(f"  new        {name}: {measured_ns:.1f} ns (not in baseline)")
            continue
        ratio = measured_ns / base_ns
        line = f"{name}: {measured_ns:.1f} ns vs baseline {base_ns:.1f} ns ({ratio:.2f}x)"
        if ratio > 1.0 + tolerance:
            regressions.append(line)
            print(f"  REGRESSION {line}")
        elif ratio < 1.0 - tolerance:
            print(f"  improved   {line}")
        else:
            print(f"  ok         {line}")

    for name in sorted(set(baseline) - set(runs)):
        print(f"  warning    {name}: in baseline but not measured by any run file")

    if regressions:
        print(
            f"\n{len(regressions)} benchmark(s) regressed beyond the "
            f"{tolerance:.0%} tolerance:"
        )
        for line in regressions:
            print(f"  {line}")
        print(
            "\nIf the slowdown is intentional, re-baseline with\n"
            f"  scripts/bench_gate.py update {baseline_path} <run.json ...>\n"
            "and commit the diff with an explanation."
        )
        return 1
    print(f"\nall {len(runs)} benchmarks within {tolerance:.0%} of baseline")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("mode", choices=["check", "update"])
    parser.add_argument("baseline", type=Path)
    parser.add_argument("runs", type=Path, nargs="+")
    parser.add_argument("--tolerance", type=float, default=0.15)
    args = parser.parse_args(argv)

    runs = load_run_benchmarks(args.runs)
    if not runs:
        print("no benchmark entries found in the run files", file=sys.stderr)
        return 1
    if args.mode == "update":
        return cmd_update(args.baseline, runs)
    return cmd_check(args.baseline, runs, args.tolerance)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
