#!/usr/bin/env bash
# run_tidy.sh — run clang-tidy (config: .clang-tidy) over the C++ trees.
#
# Usage: scripts/run_tidy.sh [--strict] [paths...]
#
#   --strict   fail (exit 2) when clang-tidy is not installed instead of
#              skipping; CI passes this so the gate cannot silently vanish.
#   paths      files or directories to lint (default: src tests bench examples)
#
# Builds the `tidy` preset's compile_commands.json on demand, then runs
# clang-tidy with warnings-as-errors (set in .clang-tidy) so any finding is a
# non-zero exit.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo_root"

strict=0
paths=()
for arg in "$@"; do
  case "$arg" in
    --strict) strict=1 ;;
    *) paths+=("$arg") ;;
  esac
done
if [[ ${#paths[@]} -eq 0 ]]; then
  paths=(src tests bench examples)
fi

# Find clang-tidy: plain name first, then versioned fallbacks (newest first).
tidy_bin=""
if command -v clang-tidy >/dev/null 2>&1; then
  tidy_bin="clang-tidy"
else
  for ver in 21 20 19 18 17 16 15 14; do
    if command -v "clang-tidy-${ver}" >/dev/null 2>&1; then
      tidy_bin="clang-tidy-${ver}"
      break
    fi
  done
fi

if [[ -z "$tidy_bin" ]]; then
  if [[ "$strict" -eq 1 ]]; then
    echo "run_tidy.sh: clang-tidy not found (strict mode)" >&2
    exit 2
  fi
  echo "run_tidy.sh: clang-tidy not found; skipping (install clang-tidy, or use --strict to fail)" >&2
  exit 0
fi

build_dir="build-tidy"
if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  echo "run_tidy.sh: generating $build_dir/compile_commands.json"
  if cmake --list-presets >/dev/null 2>&1; then
    cmake --preset tidy >/dev/null
  else
    cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=Debug -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  fi
fi

# Collect translation units under the requested paths.
files=()
while IFS= read -r f; do
  files+=("$f")
done < <(find "${paths[@]}" -name '*.cpp' -type f | sort)

if [[ ${#files[@]} -eq 0 ]]; then
  echo "run_tidy.sh: no .cpp files under: ${paths[*]}" >&2
  exit 1
fi

echo "run_tidy.sh: $tidy_bin over ${#files[@]} files"
status=0
for f in "${files[@]}"; do
  "$tidy_bin" -p "$build_dir" --quiet "$f" || status=1
done

if [[ "$status" -ne 0 ]]; then
  echo "run_tidy.sh: clang-tidy reported findings" >&2
fi
exit "$status"
