#!/usr/bin/env bash
# Regenerate tests/data/golden_report.json after an INTENTIONAL change to
# the report schema or to the simulation itself.
#
# The golden file pins the deterministic sections ("config", "mixes",
# "outcomes", "summary") of a fixed-seed 2-mix sweep; the volatile
# "timings"/"metrics" sections are written but never compared (DESIGN.md §9).
# GoldenReport.FixedSeedSweepMatchesCommittedGolden rewrites the file when
# SYMBIOSIS_REGEN_GOLDEN is set, instead of comparing against it.
#
# Usage: scripts/regen_golden_report.sh
# Then review `git diff tests/data/golden_report.json` and commit it together
# with the change that moved the numbers.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . > /dev/null
cmake --build build -j --target symbiosis_tests > /dev/null
SYMBIOSIS_REGEN_GOLDEN=1 ./build/tests/symbiosis_tests \
  --gtest_filter='GoldenReport.*'

git --no-pager diff --stat tests/data/golden_report.json || true
echo "review the diff above, then commit tests/data/golden_report.json"
